//! Hand-rolled JSON writer and parser.
//!
//! The telemetry crate exports Chrome trace-event files and JSONL metric
//! snapshots without any external serialization dependency, so it carries
//! its own small writer. The matching recursive-descent [`parse`] exists
//! so integration tests can validate exported traces (balanced `B`/`E`
//! events, monotonic timestamps) without `serde_json`.

use std::fmt::Write as _;

/// Incremental JSON writer with automatic comma placement.
///
/// Call `begin_object`/`begin_array`, then `key` + a value method inside
/// objects or just value methods inside arrays. The writer keeps a stack
/// of "has this container already emitted an element" flags, so callers
/// never manage commas.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // One flag per open container: true once the first element was written.
    stack: Vec<bool>,
    // Set between `key()` and the value that follows it.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes writing and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(started) = self.stack.last_mut() {
            if *started {
                self.out.push(',');
            }
            *started = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key; the next value call becomes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(started) = self.stack.last_mut() {
            if *started {
                self.out.push(',');
            }
            *started = true;
        }
        escape_into(k, &mut self.out);
        self.out.push(':');
        self.pending_key = true;
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.before_value();
        escape_into(s, &mut self.out);
        self
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a signed integer value.
    pub fn number_i64(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a finite float with three decimals (the Chrome trace `ts`
    /// microsecond convention); non-finite values become `0`.
    pub fn number_f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v:.3}");
        } else {
            self.out.push('0');
        }
        self
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }
}

/// Escapes `s` as a JSON string literal (including the quotes) into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object fields, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is not.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the rest of a UTF-8 sequence verbatim. The
                    // input is a &str, so sequences are already valid.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|c| c >= 0x80 && (c & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("p2f \"wait\"\n");
        w.key("events").begin_array();
        w.begin_object();
        w.key("ts").number_f64(12.3456);
        w.key("ok").boolean(true);
        w.end_object();
        w.number_u64(7);
        w.end_array();
        w.key("neg").number_i64(-3);
        w.end_object();
        let text = w.finish();
        assert_eq!(
            text,
            r#"{"name":"p2f \"wait\"\n","events":[{"ts":12.346,"ok":true},7],"neg":-3}"#
        );
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_array();
        for i in 0..3u64 {
            w.begin_object();
            w.key("i").number_u64(i);
            w.key("label").string("tab\there");
            w.end_object();
        }
        w.end_array();
        let doc = parse(&w.finish()).expect("writer output must parse");
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("i").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            arr[2].get("label").and_then(Json::as_str),
            Some("tab\there")
        );
    }

    #[test]
    fn parser_handles_escapes_numbers_and_literals() {
        let doc = parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "s": "xAé😀"}"#).unwrap();
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("xAé😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"k\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
