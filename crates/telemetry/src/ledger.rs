//! Per-step phase ledger: a fixed-slot, allocation-free ring of per-step
//! phase durations with exact windowed percentiles.
//!
//! Histograms (log2 buckets) answer "what does this phase cost over the
//! whole run" but cannot say *which step* regressed or give exact
//! percentiles. The ledger keeps, per engine thread (lane), a ring of
//! `capacity` step slots; each slot holds one accumulated duration cell
//! per [`LedgerPhase`]. Writes are wait-free single-writer stores:
//!
//! * every lane is owned by exactly one thread (its trainer or flusher),
//!   so slot maintenance needs no CAS loops;
//! * a slot is tagged with `step + 1` (`0` = never written). When the
//!   owner writes a step whose slot still carries an older step's tag, it
//!   zeroes the slot's cells and retags — so wrap-around never needs a
//!   coordinated clear;
//! * flusher lanes do not know the trainer step; they attribute work to
//!   the ledger's *step cursor*, which the barrier-A leader advances at
//!   the top of each step. Attribution is therefore exact for trainer
//!   phases and within ±1 step for flusher phases (documented, and fine:
//!   the summary aggregates per step before computing percentiles).
//!
//! The summary ([`LedgerSummary`]) folds lanes per step — **max** across
//! trainer lanes (the critical path is the slowest trainer) and **sum**
//! across flusher lanes (total background work) — then sorts the per-step
//! values for *exact* nearest-rank percentiles over the retained window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of step slots retained per lane.
pub const DEFAULT_LEDGER_STEPS: usize = 4096;

/// The per-step phases the ledger distinguishes.
///
/// Trainer phases decompose one training step on the slowest-trainer
/// critical path; flusher phases decompose background flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerPhase {
    /// Drawing the step's sample keys.
    Sample,
    /// Resolving unique keys against the GPU caches.
    CacheQuery,
    /// Reading cache-missed rows from host DRAM.
    HostRead,
    /// Forward/backward plus gradient aggregation.
    Compute,
    /// Waiting on barrier A (slowest-trainer sync before the reduce).
    BarrierA,
    /// Decentralized reduce: folding this trainer's key shard across all
    /// per-GPU aggregator slots, plus the sharded write-through apply.
    Reduce,
    /// Applying merged gradients to the GPU caches.
    CacheApply,
    /// Registering write/read intents in the g-entry store and PQ.
    Registration,
    /// Blocked in the flush-wait condition (P²F / FIFO gate).
    StallWait,
    /// Leader-only work: merge, publish, bookkeeping (barriers A and C).
    LeaderApply,
    /// Flusher: pulling batches out of the priority queue.
    FlushDequeue,
    /// Flusher: applying dequeued rows to host DRAM.
    FlushApply,
}

impl LedgerPhase {
    /// Number of phases (cells per step slot).
    pub const COUNT: usize = 12;

    /// Every phase, in a fixed order matching `as usize` indices.
    pub const ALL: [LedgerPhase; LedgerPhase::COUNT] = [
        LedgerPhase::Sample,
        LedgerPhase::CacheQuery,
        LedgerPhase::HostRead,
        LedgerPhase::Compute,
        LedgerPhase::BarrierA,
        LedgerPhase::Reduce,
        LedgerPhase::CacheApply,
        LedgerPhase::Registration,
        LedgerPhase::StallWait,
        LedgerPhase::LeaderApply,
        LedgerPhase::FlushDequeue,
        LedgerPhase::FlushApply,
    ];

    /// Index into per-phase cell tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (JSON keys in `BENCH_engine.json`, table
    /// rows in `perf_gate.py`).
    pub fn name(self) -> &'static str {
        match self {
            LedgerPhase::Sample => "sample",
            LedgerPhase::CacheQuery => "cache_query",
            LedgerPhase::HostRead => "host_read",
            LedgerPhase::Compute => "compute",
            LedgerPhase::BarrierA => "barrier_a",
            LedgerPhase::Reduce => "reduce",
            LedgerPhase::CacheApply => "cache_apply",
            LedgerPhase::Registration => "registration",
            LedgerPhase::StallWait => "stall_wait",
            LedgerPhase::LeaderApply => "leader_apply",
            LedgerPhase::FlushDequeue => "flush_dequeue",
            LedgerPhase::FlushApply => "flush_apply",
        }
    }

    /// Whether the phase is recorded by flusher lanes (summed across
    /// lanes per step) rather than trainer lanes (maxed across lanes).
    pub fn is_flusher(self) -> bool {
        matches!(self, LedgerPhase::FlushDequeue | LedgerPhase::FlushApply)
    }
}

/// Which kind of thread owns a lane; decides cross-lane aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// A trainer thread: per-step values are maxed across lanes
    /// (critical path = slowest trainer).
    Trainer,
    /// A flusher thread: per-step values are summed across lanes
    /// (total background work done during the step).
    Flusher,
}

/// One thread's ring of tagged step slots.
#[derive(Debug)]
struct LaneShared {
    kind: LaneKind,
    /// `step + 1` of the step occupying each slot; 0 = never written.
    tags: Box<[AtomicU64]>,
    /// `capacity * LedgerPhase::COUNT` duration cells, slot-major.
    cells: Box<[AtomicU64]>,
}

/// The ledger core owned by a `Telemetry` instance.
#[derive(Debug)]
pub(crate) struct LedgerCore {
    capacity: usize,
    /// Current step, advanced by the barrier-A leader; flusher lanes
    /// attribute their work to this step.
    cursor: Arc<AtomicU64>,
    lanes: Mutex<Vec<Arc<LaneShared>>>,
}

impl LedgerCore {
    pub fn new(capacity: usize) -> Self {
        LedgerCore {
            capacity: capacity.max(1),
            cursor: Arc::new(AtomicU64::new(0)),
            lanes: Mutex::new(Vec::new()),
        }
    }

    pub fn advance(&self, step: u64) {
        self.cursor.store(step, Ordering::Release);
    }

    pub fn lane(&self, kind: LaneKind) -> LedgerLane {
        let shared = Arc::new(LaneShared {
            kind,
            tags: (0..self.capacity).map(|_| AtomicU64::new(0)).collect(),
            cells: (0..self.capacity * LedgerPhase::COUNT)
                .map(|_| AtomicU64::new(0))
                .collect(),
        });
        self.lanes.lock().unwrap().push(Arc::clone(&shared));
        LedgerLane {
            inner: Some(LaneHandle {
                lane: shared,
                cursor: Arc::clone(&self.cursor),
            }),
        }
    }

    /// Folds every lane into per-step, per-phase totals and computes
    /// exact percentiles over the retained step window.
    pub fn summary(&self) -> LedgerSummary {
        let lanes = self.lanes.lock().unwrap();
        // step -> [u64; COUNT] after cross-lane folding.
        let mut steps: std::collections::BTreeMap<u64, [u64; LedgerPhase::COUNT]> =
            std::collections::BTreeMap::new();
        for lane in lanes.iter() {
            for slot in 0..lane.tags.len() {
                let tag = lane.tags[slot].load(Ordering::Acquire);
                if tag == 0 {
                    continue;
                }
                let step = tag - 1;
                let entry = steps.entry(step).or_insert([0; LedgerPhase::COUNT]);
                for phase in LedgerPhase::ALL {
                    let v = lane.cells[slot * LedgerPhase::COUNT + phase.index()]
                        .load(Ordering::Relaxed);
                    let cell = &mut entry[phase.index()];
                    match lane.kind {
                        LaneKind::Trainer => *cell = (*cell).max(v),
                        LaneKind::Flusher => *cell += v,
                    }
                }
            }
        }
        // Lanes wrap independently: an idle flusher lane can still carry
        // a tag for a step the (always-writing) trainer lanes have long
        // overwritten. Trim to the newest `capacity` steps so every
        // retained step has complete trainer coverage.
        let newest = steps.keys().next_back().copied().unwrap_or(0);
        // Saturate both subtractions: the constructor clamps capacity to
        // >= 1, but a zero must trim to "keep only the newest step", not
        // underflow (`0 - 1` panicked in debug builds before the guard).
        let oldest_kept = newest.saturating_sub((self.capacity as u64).saturating_sub(1));
        let window: Vec<(u64, [u64; LedgerPhase::COUNT])> = steps
            .into_iter()
            .filter(|(step, _)| *step >= oldest_kept)
            .collect();
        let (first_step, last_step) = match (window.first(), window.last()) {
            (Some((f, _)), Some((l, _))) => (*f, *l),
            _ => (0, 0),
        };
        let phases = LedgerPhase::ALL
            .map(|phase| {
                let mut vals: Vec<u64> = window
                    .iter()
                    .map(|(_, cells)| cells[phase.index()])
                    .collect();
                vals.sort_unstable();
                LedgerPhaseSummary::from_sorted(phase, &vals)
            })
            .to_vec();
        LedgerSummary {
            window: window.len() as u64,
            first_step,
            last_step,
            phases,
        }
    }
}

#[derive(Debug, Clone)]
struct LaneHandle {
    lane: Arc<LaneShared>,
    cursor: Arc<AtomicU64>,
}

/// A single thread's handle into the ledger. Disabled handles (telemetry
/// off) are inert: no allocation, no clock reads, no atomics.
///
/// A lane must only be written by the thread that obtained it — slot
/// retagging relies on single-writer ownership.
#[derive(Debug, Clone, Default)]
pub struct LedgerLane {
    inner: Option<LaneHandle>,
}

impl LedgerLane {
    /// A lane that records nothing.
    pub fn disabled() -> Self {
        LedgerLane { inner: None }
    }

    /// Whether this lane records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reads the clock when enabled; `None` when disabled (so disabled
    /// call sites skip the syscall entirely).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Accumulates the elapsed time since a [`LedgerLane::start`] stamp
    /// into `phase` for `step`.
    #[inline]
    pub fn add_since(&self, step: u64, phase: LedgerPhase, start: Option<Instant>) {
        if let (Some(_), Some(t0)) = (&self.inner, start) {
            self.add(step, phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Accumulates `ns` into `phase` for `step`.
    #[inline]
    pub fn add(&self, step: u64, phase: LedgerPhase, ns: u64) {
        let Some(h) = &self.inner else { return };
        let cap = h.lane.tags.len();
        let slot = (step % cap as u64) as usize;
        let tag = step + 1;
        if h.lane.tags[slot].load(Ordering::Relaxed) != tag {
            // The slot still holds an older (wrapped) step: zero its
            // cells and retag. Single-writer ownership makes this safe;
            // a concurrent summary read may see a torn slot, which only
            // perturbs one step of a 4096-step window.
            for p in 0..LedgerPhase::COUNT {
                h.lane.cells[slot * LedgerPhase::COUNT + p].store(0, Ordering::Relaxed);
            }
            h.lane.tags[slot].store(tag, Ordering::Release);
        }
        h.lane.cells[slot * LedgerPhase::COUNT + phase.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulates `ns` into `phase` for the ledger's current step (set
    /// by the barrier-A leader) — used by flusher lanes, which do not
    /// track the trainer step themselves.
    #[inline]
    pub fn add_current(&self, phase: LedgerPhase, ns: u64) {
        if let Some(h) = &self.inner {
            let step = h.cursor.load(Ordering::Acquire);
            self.add(step, phase, ns);
        }
    }

    /// The ledger's current step cursor (0 when disabled).
    #[inline]
    pub fn current_step(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|h| h.cursor.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

/// Exact per-step statistics for one phase over the retained window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerPhaseSummary {
    /// Which phase.
    pub phase: LedgerPhase,
    /// Per-step samples folded into the stats (= the window size).
    pub steps: u64,
    /// Sum of per-step values, in nanoseconds.
    pub total_ns: u64,
    /// Mean per-step value.
    pub mean_ns: f64,
    /// Exact 50th percentile (nearest rank) of per-step values.
    pub p50_ns: u64,
    /// Exact 95th percentile.
    pub p95_ns: u64,
    /// Exact 99th percentile.
    pub p99_ns: u64,
    /// Largest per-step value.
    pub max_ns: u64,
}

impl LedgerPhaseSummary {
    fn from_sorted(phase: LedgerPhase, sorted: &[u64]) -> Self {
        let steps = sorted.len() as u64;
        let total_ns: u64 = sorted.iter().sum();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((q * steps as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LedgerPhaseSummary {
            phase,
            steps,
            total_ns,
            mean_ns: if steps == 0 {
                0.0
            } else {
                total_ns as f64 / steps as f64
            },
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// Windowed, per-phase critical-path statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct LedgerSummary {
    /// Distinct steps in the retained window.
    pub window: u64,
    /// Oldest retained step.
    pub first_step: u64,
    /// Newest retained step.
    pub last_step: u64,
    /// One entry per [`LedgerPhase`], in `LedgerPhase::ALL` order.
    pub phases: Vec<LedgerPhaseSummary>,
}

impl LedgerSummary {
    /// The summary for `phase`, if the window is non-empty.
    pub fn phase(&self, phase: LedgerPhase) -> Option<&LedgerPhaseSummary> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Whether any step was recorded.
    pub fn is_empty(&self) -> bool {
        self.window == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lane_is_inert() {
        let lane = LedgerLane::disabled();
        assert!(!lane.is_enabled());
        assert!(lane.start().is_none());
        lane.add(3, LedgerPhase::Compute, 100);
        lane.add_current(LedgerPhase::FlushApply, 100);
        assert_eq!(lane.current_step(), 0);
    }

    #[test]
    fn trainer_lanes_max_and_flusher_lanes_sum() {
        let core = LedgerCore::new(16);
        let t0 = core.lane(LaneKind::Trainer);
        let t1 = core.lane(LaneKind::Trainer);
        let f0 = core.lane(LaneKind::Flusher);
        let f1 = core.lane(LaneKind::Flusher);
        for step in 0..4u64 {
            t0.add(step, LedgerPhase::Compute, 100 + step);
            t1.add(step, LedgerPhase::Compute, 200 + step);
            f0.add(step, LedgerPhase::FlushApply, 10);
            f1.add(step, LedgerPhase::FlushApply, 30);
        }
        let s = core.summary();
        assert_eq!(s.window, 4);
        assert_eq!((s.first_step, s.last_step), (0, 3));
        let compute = s.phase(LedgerPhase::Compute).unwrap();
        // Max across trainers: 200..=203.
        assert_eq!(compute.total_ns, 200 + 201 + 202 + 203);
        assert_eq!(compute.max_ns, 203);
        // Sum across flushers: 40 per step.
        let apply = s.phase(LedgerPhase::FlushApply).unwrap();
        assert_eq!(apply.total_ns, 160);
        assert_eq!(apply.p95_ns, 40);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let core = LedgerCore::new(256);
        let lane = core.lane(LaneKind::Trainer);
        // 100 steps: values 1..=100 ns.
        for step in 0..100u64 {
            lane.add(step, LedgerPhase::StallWait, step + 1);
        }
        let s = core.summary();
        let w = s.phase(LedgerPhase::StallWait).unwrap();
        assert_eq!(w.steps, 100);
        assert_eq!(w.p50_ns, 50);
        assert_eq!(w.p95_ns, 95);
        assert_eq!(w.p99_ns, 99);
        assert_eq!(w.max_ns, 100);
        assert!((w.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn wrapping_retags_slots_and_keeps_the_newest_window() {
        let core = LedgerCore::new(4);
        let lane = core.lane(LaneKind::Trainer);
        for step in 0..10u64 {
            lane.add(step, LedgerPhase::Registration, 1000 + step);
            // Accumulation within a step must survive the retag.
            lane.add(step, LedgerPhase::Registration, 1);
        }
        let s = core.summary();
        assert_eq!(s.window, 4);
        assert_eq!((s.first_step, s.last_step), (6, 9));
        let r = s.phase(LedgerPhase::Registration).unwrap();
        assert_eq!(r.max_ns, 1009 + 1);
        assert_eq!(r.total_ns, (1006 + 1007 + 1008 + 1009) + 4);
    }

    #[test]
    fn zero_capacity_saturates_instead_of_underflowing() {
        // The constructor clamps to one slot, and summary's window trim
        // must saturate rather than compute `0 - 1` (a debug-build panic
        // before the guard). Exercised end to end through the public API
        // in crate tests; here against the core directly.
        let core = LedgerCore::new(0);
        assert_eq!(core.summary().window, 0, "empty ledger, no panic");
        let lane = core.lane(LaneKind::Trainer);
        for step in 0..3u64 {
            lane.add(step, LedgerPhase::Compute, 10 + step);
        }
        let s = core.summary();
        // One retained slot: only the newest step survives the trim.
        assert_eq!(s.window, 1);
        assert_eq!((s.first_step, s.last_step), (2, 2));
        assert_eq!(s.phase(LedgerPhase::Compute).unwrap().total_ns, 12);
    }

    #[test]
    fn cursor_routes_flusher_attribution() {
        let core = LedgerCore::new(8);
        let f = core.lane(LaneKind::Flusher);
        core.advance(5);
        assert_eq!(f.current_step(), 5);
        f.add_current(LedgerPhase::FlushDequeue, 77);
        let s = core.summary();
        assert_eq!((s.first_step, s.last_step), (5, 5));
        assert_eq!(s.phase(LedgerPhase::FlushDequeue).unwrap().total_ns, 77);
    }
}
