//! `frugal-telemetry`: dependency-free observability for the Frugal
//! engine stack.
//!
//! The crate provides four things, all behind one cheap-to-clone
//! [`Telemetry`] handle:
//!
//! * a [`Registry`] of named atomic [`Counter`]s, [`Gauge`]s, and
//!   log2-bucketed nanosecond [`Histogram`]s with p50/p95/p99 summaries;
//! * per-thread [`Span`] timers over the engine [`Phase`]s (plus
//!   histogram-only [`Probe`]s for shared hot paths like PQ ops), with
//!   near-zero cost when telemetry is off;
//! * a bounded per-thread ring of completed spans exported as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto) and a JSONL
//!   metrics snapshot — serialized by the crate's own [`json`] module;
//! * stall attribution: every P²F wait can file a [`StallRecord`] naming
//!   the blocking priority and pending-key count.
//!
//! `Telemetry::off()` (the default) carries no allocation and makes every
//! operation a no-op, so engine code wires spans unconditionally. The
//! [`Registry`] is also usable standalone: the engine keeps counters its
//! *logic* depends on (cache hit ratios, flush-rate estimates) on a
//! registry even when telemetry is disabled.

#![warn(missing_docs)]

pub mod json;
mod ledger;
mod registry;
mod span;
mod trace;

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use ledger::{
    LaneKind, LedgerLane, LedgerPhase, LedgerPhaseSummary, LedgerSummary, DEFAULT_LEDGER_STEPS,
};
pub use registry::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use span::{Phase, Probe, Span, SpanArgs, ThreadRecorder};
pub use trace::DEFAULT_SPANS_PER_THREAD;

use json::JsonWriter;
use ledger::LedgerCore;
use trace::TraceCollector;

/// Default cap on retained [`StallRecord`]s.
pub const DEFAULT_MAX_STALLS: usize = 4 * 1024;

/// One P²F wait that actually blocked, with attribution and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallRecord {
    /// The training step that stalled.
    pub step: u64,
    /// How long the trainer waited, in nanoseconds.
    pub wait_ns: u64,
    /// `PQ.top()` at wait entry — the priority (deadline step) of the
    /// flush work blocking this step.
    pub blocking_priority: u64,
    /// Pending g-entry keys at wait entry (outstanding flush backlog).
    pub pending_keys: u64,
    /// Priority-queue depth (keys awaiting dequeue) at wait entry.
    pub queue_depth: u64,
    /// A key sitting at the blocking priority at wait entry, when the
    /// queue could name one (best effort, non-destructive peek).
    pub blocking_key: Option<u64>,
    /// Id of the flusher batch whose in-flight clear the trainer
    /// observed on wake-up — the other end of the Chrome-trace flow
    /// arrow. `0` when no batch had completed yet (e.g. a spurious or
    /// shutdown wake).
    pub cleared_by: u64,
}

/// The retained stall records plus how many were dropped at the cap.
#[derive(Debug, Clone, Default)]
pub struct StallSummary {
    /// Retained records, in occurrence order.
    pub records: Vec<StallRecord>,
    /// Records dropped once the cap was hit.
    pub dropped: u64,
}

impl StallSummary {
    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing stalled (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total blocked time across retained records, in nanoseconds.
    pub fn total_wait_ns(&self) -> u64 {
        self.records.iter().map(|r| r.wait_ns).sum()
    }

    /// The longest retained stall.
    pub fn longest(&self) -> Option<&StallRecord> {
        self.records.iter().max_by_key(|r| r.wait_ns)
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    registry: Arc<Registry>,
    trace: TraceCollector,
    ledger: LedgerCore,
    stalls: Mutex<Vec<StallRecord>>,
    stalls_dropped: AtomicU64,
    stall_cap: usize,
}

/// Handle to one telemetry domain (one training run).
///
/// Cloning shares the underlying registry, rings, and stall log. The
/// default handle is [`Telemetry::off`]: disabled, allocation-free, and
/// every operation on it is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled instance with default capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPANS_PER_THREAD, DEFAULT_MAX_STALLS)
    }

    /// An enabled instance retaining at most `spans_per_thread` completed
    /// spans per recorder thread and `max_stalls` stall records.
    pub fn with_capacity(spans_per_thread: usize, max_stalls: usize) -> Self {
        Self::with_ledger_capacity(spans_per_thread, max_stalls, DEFAULT_LEDGER_STEPS)
    }

    /// [`Telemetry::with_capacity`] with an explicit step-ledger window
    /// (`ledger_steps` step slots per lane).
    pub fn with_ledger_capacity(
        spans_per_thread: usize,
        max_stalls: usize,
        ledger_steps: usize,
    ) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Arc::new(Registry::new()),
                trace: TraceCollector::new(spans_per_thread),
                ledger: LedgerCore::new(ledger_steps),
                stalls: Mutex::new(Vec::new()),
                stalls_dropped: AtomicU64::new(0),
                stall_cap: max_stalls,
            })),
        }
    }

    /// The disabled handle (same as `Telemetry::default()`).
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metric registry, when enabled.
    pub fn registry(&self) -> Option<Arc<Registry>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.registry))
    }

    /// Creates a span recorder for the calling engine thread. `name`
    /// becomes the thread's label in exported traces.
    pub fn recorder(&self, name: impl Into<String>) -> ThreadRecorder {
        match &self.inner {
            None => ThreadRecorder::disabled(),
            Some(i) => {
                let (buf, flows) = i.trace.register_thread(name.into());
                let hists = Phase::ALL.map(|p| i.registry.histogram(p.metric_name()));
                ThreadRecorder::enabled(buf, flows, i.epoch, hists)
            }
        }
    }

    /// Registers a step-ledger lane for the calling engine thread (a
    /// disabled lane when telemetry is off). Each lane must be written
    /// by exactly one thread.
    pub fn ledger_lane(&self, kind: LaneKind) -> LedgerLane {
        match &self.inner {
            None => LedgerLane::disabled(),
            Some(i) => i.ledger.lane(kind),
        }
    }

    /// Advances the ledger's step cursor; called by the barrier-A leader
    /// at the top of each step so flusher lanes attribute their work to
    /// the step currently executing.
    #[inline]
    pub fn ledger_advance(&self, step: u64) {
        if let Some(i) = &self.inner {
            i.ledger.advance(step);
        }
    }

    /// Windowed per-phase critical-path statistics; `None` when
    /// disabled.
    pub fn ledger_summary(&self) -> Option<LedgerSummary> {
        self.inner.as_ref().map(|i| i.ledger.summary())
    }

    /// A histogram-only latency probe named `name` (disabled probe when
    /// telemetry is off).
    pub fn probe(&self, name: &'static str) -> Probe {
        match &self.inner {
            None => Probe::disabled(),
            Some(i) => Probe::enabled(i.registry.histogram(name)),
        }
    }

    /// Files a stall record (kept up to the configured cap) and bumps
    /// the `p2f.stalls` counter.
    pub fn record_stall(&self, rec: StallRecord) {
        let Some(i) = &self.inner else { return };
        i.registry.counter("p2f.stalls").incr();
        let mut stalls = i.stalls.lock().unwrap();
        if stalls.len() < i.stall_cap {
            stalls.push(rec);
        } else {
            i.stalls_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of everything recorded so far; `None` when disabled.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let i = self.inner.as_ref()?;
        Some(TelemetrySummary {
            metrics: i.registry.snapshot(),
            stalls: StallSummary {
                records: i.stalls.lock().unwrap().clone(),
                dropped: i.stalls_dropped.load(Ordering::Relaxed),
            },
            ledger: Some(i.ledger.summary()),
            dropped_spans: i.trace.dropped_spans(),
        })
    }

    /// The full Chrome trace-event document; `None` when disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        let i = self.inner.as_ref()?;
        let mut w = JsonWriter::new();
        i.trace.write_chrome_trace(&mut w);
        Some(w.finish())
    }

    /// Writes the Chrome trace to `path`. Returns `Ok(false)` without
    /// touching the filesystem when disabled.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<bool> {
        match self.chrome_trace_json() {
            None => Ok(false),
            Some(doc) => {
                std::fs::write(path, doc)?;
                Ok(true)
            }
        }
    }

    /// One JSON object per line for every metric and stall record;
    /// `None` when disabled.
    pub fn metrics_jsonl(&self) -> Option<String> {
        Some(self.summary()?.to_jsonl())
    }
}

/// Everything a run recorded, in plain data form (attached to
/// `TrainReport` by the engines).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySummary {
    /// Counter/gauge/histogram snapshot, sorted by name.
    pub metrics: MetricsSnapshot,
    /// P²F stall attribution records.
    pub stalls: StallSummary,
    /// Per-step critical-path phase ledger (exact windowed percentiles);
    /// `None` only on summaries built before the ledger existed.
    pub ledger: Option<LedgerSummary>,
    /// Spans evicted from trace rings (0 means the trace is complete).
    pub dropped_spans: u64,
}

impl TelemetrySummary {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Summary of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.metrics
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Renders a human-readable table (used by `examples/train.rs` and
    /// the bench harness).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(ledger) = self.ledger.as_ref().filter(|l| !l.is_empty()) {
            let _ = writeln!(
                out,
                "  step ledger: {} steps (steps {}..={}), per-step critical path:",
                ledger.window, ledger.first_step, ledger.last_step
            );
            let _ = writeln!(
                out,
                "  {:<28} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "phase (ns/step)", "mean", "p50", "p95", "p99", "max"
            );
            for p in &ledger.phases {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>11.0} {:>11} {:>11} {:>11} {:>11}",
                    p.phase.name(),
                    p.mean_ns,
                    p.p50_ns,
                    p.p95_ns,
                    p.p99_ns,
                    p.max_ns
                );
            }
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(
                out,
                "  {:<28} {:>9} {:>11} {:>11} {:>11} {:>11}",
                "phase/latency (ns)", "count", "p50", "p95", "p99", "mean"
            );
            for (name, s) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>9} {:>11} {:>11} {:>11} {:>11.0}",
                    name,
                    s.count,
                    s.p50,
                    s.p95,
                    s.p99,
                    s.mean()
                );
            }
        }
        if !self.metrics.counters.is_empty() {
            let _ = writeln!(out, "  {:<28} {:>9}", "counter", "value");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "  {name:<28} {v:>9}");
            }
        }
        for (name, v) in &self.metrics.gauges {
            let _ = writeln!(out, "  {name:<28} {v:>9} (gauge)");
        }
        if self.stalls.is_empty() {
            let _ = writeln!(out, "  no P2F stalls recorded");
        } else {
            let total_ms = self.stalls.total_wait_ns() as f64 / 1e6;
            let _ = write!(
                out,
                "  {} P2F stalls ({} dropped), total wait {:.3} ms",
                self.stalls.len(),
                self.stalls.dropped,
                total_ms
            );
            if let Some(l) = self.stalls.longest() {
                let _ = write!(
                    out,
                    "; longest {:.3} ms at step {} (blocking priority {}, {} pending keys, \
                     queue depth {}, cleared by batch {})",
                    l.wait_ns as f64 / 1e6,
                    l.step,
                    l.blocking_priority,
                    l.pending_keys,
                    l.queue_depth,
                    l.cleared_by
                );
            }
            let _ = writeln!(out);
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "  note: {} spans evicted from trace rings",
                self.dropped_spans
            );
        }
        out
    }

    /// Serializes the snapshot as JSONL: one object per metric, then one
    /// per stall record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.metrics.counters {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("kind").string("counter");
            w.key("name").string(name);
            w.key("value").number_u64(*v);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        for (name, v) in &self.metrics.gauges {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("kind").string("gauge");
            w.key("name").string(name);
            w.key("value").number_i64(*v);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        for (name, s) in &self.metrics.histograms {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("kind").string("histogram");
            w.key("name").string(name);
            w.key("count").number_u64(s.count);
            w.key("sum").number_u64(s.sum);
            w.key("min").number_u64(s.min);
            w.key("max").number_u64(s.max);
            w.key("p50").number_u64(s.p50);
            w.key("p95").number_u64(s.p95);
            w.key("p99").number_u64(s.p99);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        if let Some(ledger) = self.ledger.as_ref().filter(|l| !l.is_empty()) {
            for p in &ledger.phases {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.key("kind").string("ledger_phase");
                w.key("name").string(p.phase.name());
                w.key("steps").number_u64(p.steps);
                w.key("total_ns").number_u64(p.total_ns);
                w.key("mean_ns").number_f64(p.mean_ns);
                w.key("p50_ns").number_u64(p.p50_ns);
                w.key("p95_ns").number_u64(p.p95_ns);
                w.key("p99_ns").number_u64(p.p99_ns);
                w.key("max_ns").number_u64(p.max_ns);
                w.end_object();
                out.push_str(&w.finish());
                out.push('\n');
            }
        }
        for r in &self.stalls.records {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("kind").string("stall");
            w.key("step").number_u64(r.step);
            w.key("wait_ns").number_u64(r.wait_ns);
            w.key("blocking_priority").number_u64(r.blocking_priority);
            w.key("pending_keys").number_u64(r.pending_keys);
            w.key("queue_depth").number_u64(r.queue_depth);
            if let Some(k) = r.blocking_key {
                w.key("blocking_key").number_u64(k);
            }
            w.key("cleared_by").number_u64(r.cleared_by);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        assert!(tel.registry().is_none());
        assert!(tel.summary().is_none());
        assert!(tel.chrome_trace_json().is_none());
        let rec = tel.recorder("t");
        assert!(!rec.is_enabled());
        assert_eq!(rec.span(Phase::Compute).finish(), 0);
        tel.probe("pq.enqueue_ns").time(|| ());
        tel.record_stall(StallRecord {
            step: 0,
            wait_ns: 1,
            blocking_priority: 0,
            pending_keys: 0,
            queue_depth: 0,
            blocking_key: None,
            cleared_by: 0,
        });
        let lane = tel.ledger_lane(LaneKind::Trainer);
        assert!(!lane.is_enabled());
        tel.ledger_advance(9);
        assert!(tel.ledger_summary().is_none());
    }

    #[test]
    fn zero_ledger_capacity_is_clamped_and_summarizes() {
        // Regression: a zero-step ledger window used to underflow in the
        // summary's window trim (`capacity - 1` on u64, a debug-build
        // panic). The constructor clamps to one slot and the trim
        // saturates, so the degenerate config just keeps the newest step.
        let tel = Telemetry::with_ledger_capacity(16, 16, 0);
        let lane = tel.ledger_lane(LaneKind::Trainer);
        for step in 0..5u64 {
            lane.add(step, LedgerPhase::Compute, 100 + step);
        }
        let s = tel.ledger_summary().expect("enabled telemetry summarizes");
        assert_eq!(s.window, 1);
        assert_eq!((s.first_step, s.last_step), (4, 4));
    }

    #[test]
    fn spans_feed_histograms_and_trace() {
        let tel = Telemetry::new();
        let rec = tel.recorder("trainer-0");
        {
            let _outer = rec.span(Phase::Compute);
            let _inner = rec.span_with(Phase::HostRead, SpanArgs::one("rows", 4));
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let summary = tel.summary().unwrap();
        assert_eq!(summary.histogram("trainer.compute_ns").unwrap().count, 1);
        assert_eq!(summary.histogram("trainer.host_read_ns").unwrap().count, 1);
        assert!(summary.histogram("trainer.compute_ns").unwrap().max >= 200_000);

        let doc = json::parse(&tel.chrome_trace_json().unwrap()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(json::Json::as_array)
            .unwrap();
        let b = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("E"))
            .count();
        assert_eq!((b, e), (2, 2));
        // The annotated host_read begin event carries its args.
        assert!(events.iter().any(|ev| {
            ev.get("name").and_then(json::Json::as_str) == Some("host_read")
                && ev
                    .get("args")
                    .and_then(|a| a.get("rows"))
                    .and_then(json::Json::as_f64)
                    == Some(4.0)
        }));
    }

    #[test]
    fn stall_records_are_capped() {
        let tel = Telemetry::with_capacity(64, 2);
        for step in 0..5 {
            tel.record_stall(StallRecord {
                step,
                wait_ns: 100 * (step + 1),
                blocking_priority: step,
                pending_keys: 7,
                queue_depth: 11,
                blocking_key: Some(42),
                cleared_by: step + 1,
            });
        }
        let s = tel.summary().unwrap();
        assert_eq!(s.stalls.len(), 2);
        assert_eq!(s.stalls.dropped, 3);
        assert_eq!(s.counter("p2f.stalls"), Some(5));
        assert_eq!(s.stalls.longest().unwrap().step, 1);
        assert_eq!(s.stalls.total_wait_ns(), 300);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let tel = Telemetry::new();
        let rec = tel.recorder("t");
        rec.span(Phase::Sample).finish();
        tel.registry().unwrap().counter("cache.hits").add(9);
        tel.registry().unwrap().gauge("flush.inflight").set(-2);
        tel.record_stall(StallRecord {
            step: 3,
            wait_ns: 42,
            blocking_priority: 1,
            pending_keys: 2,
            queue_depth: 5,
            blocking_key: Some(17),
            cleared_by: 2,
        });
        tel.ledger_lane(LaneKind::Trainer)
            .add(3, LedgerPhase::StallWait, 42);
        let jsonl = tel.metrics_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 4);
        for line in &lines {
            json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        }
        assert!(lines.iter().any(|l| l.contains("\"kind\":\"stall\"")));
        assert!(lines.iter().any(|l| l.contains("\"queue_depth\":5")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"ledger_phase\"") && l.contains("\"stall_wait\"")));
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new();
        let clone = tel.clone();
        clone.registry().unwrap().counter("cache.hits").incr();
        assert_eq!(tel.summary().unwrap().counter("cache.hits"), Some(1));
    }
}
