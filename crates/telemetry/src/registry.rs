//! Named metric registry: atomic counters, gauges, and log2-bucketed
//! nanosecond histograms with percentile summaries.
//!
//! Handles returned by the registry are `Arc`s, so hot paths resolve a
//! metric once and then touch a single atomic per update. The registry
//! itself is independent of the [`Telemetry`](crate::Telemetry) switch:
//! the engine keeps counters it *computes with* (cache hits, flush rows)
//! on a registry even when tracing is disabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, inflight rows).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets; bucket `i` covers values with bit width `i`,
/// i.e. bucket 0 holds only 0 and bucket `i>0` holds `[2^(i-1), 2^i)`.
/// 64 buckets cover the whole `u64` range of nanosecond durations.
const BUCKETS: usize = 64;

/// A lock-free histogram of `u64` samples (by convention, nanoseconds).
///
/// Samples land in log2 buckets, so `record` is one `leading_zeros` plus
/// three relaxed atomic adds. Percentiles are estimated from the bucket
/// cumulative distribution using each bucket's geometric midpoint, then
/// clamped to the observed min/max — at most one power-of-two of error,
/// which is plenty for p50/p95/p99 over phase durations.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Index of the bucket holding `v`: its bit width.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let idx = Self::bucket_of(v).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot with percentile estimates.
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive total from the bucket snapshot so percentile ranks are
        // consistent with it even if recorders race with this read.
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let pct = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_midpoint(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Geometric midpoint of bucket `i` (its representative value).
fn bucket_midpoint(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1);
    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
    (lo as f64 * hi as f64).sqrt() as u64
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Get-or-register store of named metrics.
///
/// Metric names are `&'static str` by design: every metric in the stack
/// is declared at a call site, and static names keep registration
/// allocation-free and make typos a compile-time grep away.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it first if needed.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().unwrap().entry(name).or_default())
    }

    /// Returns the gauge named `name`, registering it first if needed.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().unwrap().entry(name).or_default())
    }

    /// Returns the histogram named `name`, registering it first if needed.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().unwrap().entry(name).or_default())
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().unwrap().get(name).map(|c| c.get())
    }

    /// Summary of a histogram, if registered.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .lock()
            .unwrap()
            .get(name)
            .map(|h| h.summary())
    }

    /// Snapshot of every metric, sorted by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.summary()))
                .collect(),
        }
    }
}

/// Sorted point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_the_same_handle_per_name() {
        let r = Registry::new();
        let a = r.counter("cache.hits");
        let b = r.counter("cache.hits");
        a.add(3);
        b.incr();
        assert_eq!(r.counter_value("cache.hits"), Some(4));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.counter_value("unknown"), None);
    }

    #[test]
    fn gauge_tracks_signed_values() {
        let r = Registry::new();
        let g = r.gauge("queue.depth");
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_percentiles_bracket_the_distribution() {
        let h = Histogram::default();
        // 90 fast samples around 1µs, 10 slow around 1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1_000);
        assert_eq!(s.max, 1_000_000);
        // p50 must sit in the fast mode's bucket (within 2x of 1µs)...
        assert!(s.p50 >= 512 && s.p50 <= 2_048, "p50 = {}", s.p50);
        // ...and p95/p99 in the slow mode's bucket.
        assert!(s.p95 >= 500_000, "p95 = {}", s.p95);
        assert!(s.p99 >= 500_000 && s.p99 <= 1_000_000, "p99 = {}", s.p99);
        assert!((s.mean() - 100_900.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // The top log2 bucket must clamp its representative value instead
        // of overflowing back to a small number.
        assert!(s.p99 >= s.p50);
    }
}
