//! Phase definitions, per-thread span recorders, and RAII span timers.
//!
//! A [`ThreadRecorder`] is created once per trainer/flusher thread from a
//! [`Telemetry`](crate::Telemetry) handle. Opening a [`Span`] on it stamps
//! the current time; dropping the span records the duration both into the
//! phase's histogram (for percentiles) and into the thread's bounded ring
//! (for Chrome trace export). When telemetry is disabled the recorder is
//! empty and a span is a no-op that never reads the clock.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::Histogram;
use crate::trace::{FlowRecord, FlowSink, SpanEvent, ThreadBuf, TraceCollector};

/// The engine phases that get span timing.
///
/// Trainer-side phases decompose one training iteration the way the
/// paper's Fig. 3c / Fig. 12 decompose iteration time; flusher-side
/// phases decompose background flushing (P²F or write-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Drawing the iteration's sample keys from the workload.
    Sample,
    /// Resolving unique keys against the GPU embedding caches.
    CacheQuery,
    /// Reading rows missed by every cache from host DRAM.
    HostRead,
    /// Model forward/backward plus gradient aggregation.
    Compute,
    /// Leader-side g-entry registration and PQ updates for one step.
    GEntryUpdate,
    /// Blocking in the P²F wait condition (`PQ.top() > s` violated).
    P2fWait,
    /// Flusher thread pulling a batch out of the priority queue.
    FlushDequeue,
    /// Flusher thread applying dequeued rows to host DRAM.
    FlushApply,
}

impl Phase {
    /// Number of phases (size for per-phase lookup tables).
    pub const COUNT: usize = 8;

    /// Every phase, in a fixed order matching `as usize` indices.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Sample,
        Phase::CacheQuery,
        Phase::HostRead,
        Phase::Compute,
        Phase::GEntryUpdate,
        Phase::P2fWait,
        Phase::FlushDequeue,
        Phase::FlushApply,
    ];

    /// Index into per-phase tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The histogram name this phase records into.
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::Sample => "trainer.sample_ns",
            Phase::CacheQuery => "trainer.cache_query_ns",
            Phase::HostRead => "trainer.host_read_ns",
            Phase::Compute => "trainer.compute_ns",
            Phase::GEntryUpdate => "leader.gentry_update_ns",
            Phase::P2fWait => "trainer.p2f_wait_ns",
            Phase::FlushDequeue => "flusher.dequeue_ns",
            Phase::FlushApply => "flusher.apply_ns",
        }
    }

    /// Short name used for trace events.
    pub fn trace_name(self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::CacheQuery => "cache_query",
            Phase::HostRead => "host_read",
            Phase::Compute => "compute",
            Phase::GEntryUpdate => "gentry_update",
            Phase::P2fWait => "p2f_wait",
            Phase::FlushDequeue => "flush_dequeue",
            Phase::FlushApply => "flush_apply",
        }
    }

    /// Trace event category (`cat` field in Chrome traces).
    pub fn category(self) -> &'static str {
        match self {
            Phase::Sample
            | Phase::CacheQuery
            | Phase::HostRead
            | Phase::Compute
            | Phase::P2fWait => "trainer",
            Phase::GEntryUpdate => "leader",
            Phase::FlushDequeue | Phase::FlushApply => "flusher",
        }
    }
}

/// Up to two numeric key/value annotations attached to a span
/// (e.g. stall attribution on a P²F wait).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanArgs {
    pairs: [(&'static str, u64); 2],
    len: u8,
}

impl SpanArgs {
    /// No annotations.
    pub const EMPTY: SpanArgs = SpanArgs {
        pairs: [("", 0); 2],
        len: 0,
    };

    /// One annotation.
    pub fn one(k: &'static str, v: u64) -> Self {
        SpanArgs {
            pairs: [(k, v), ("", 0)],
            len: 1,
        }
    }

    /// Two annotations.
    pub fn two(k1: &'static str, v1: u64, k2: &'static str, v2: u64) -> Self {
        SpanArgs {
            pairs: [(k1, v1), (k2, v2)],
            len: 2,
        }
    }

    /// The annotations, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.pairs.iter().take(self.len as usize).copied()
    }

    /// Whether there are no annotations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-thread span recorder handed out by
/// [`Telemetry::recorder`](crate::Telemetry::recorder).
///
/// Not `Sync` on purpose: each engine thread owns its recorder, so the
/// sequence counter is a plain [`Cell`] and opening a span costs one
/// clock read plus a cell bump.
#[derive(Debug)]
pub struct ThreadRecorder {
    inner: Option<RecorderInner>,
}

#[derive(Debug)]
pub(crate) struct RecorderInner {
    buf: Arc<ThreadBuf>,
    flows: Arc<FlowSink>,
    epoch: Instant,
    seq: Cell<u64>,
    hists: [Arc<Histogram>; Phase::COUNT],
}

impl ThreadRecorder {
    /// A recorder that does nothing (telemetry off).
    pub fn disabled() -> Self {
        ThreadRecorder { inner: None }
    }

    pub(crate) fn enabled(
        buf: Arc<ThreadBuf>,
        flows: Arc<FlowSink>,
        epoch: Instant,
        hists: [Arc<Histogram>; Phase::COUNT],
    ) -> Self {
        ThreadRecorder {
            inner: Some(RecorderInner {
                buf,
                flows,
                epoch,
                seq: Cell::new(0),
                hists,
            }),
        }
    }

    /// Whether spans opened on this recorder actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits the producing half of a cross-thread flow arrow (Chrome
    /// `ph:"s"`), e.g. a flusher batch that just cleared its in-flight
    /// marker. `id == 0` means "no batch" and is ignored, as is a
    /// disabled recorder.
    pub fn flow_start(&self, id: u64) {
        self.flow(id, true);
    }

    /// Emits the consuming half of a flow arrow (Chrome `ph:"f"`,
    /// binding to the enclosing slice end), e.g. a trainer observing the
    /// stall-clearing batch. `id == 0` is ignored.
    pub fn flow_finish(&self, id: u64) {
        self.flow(id, false);
    }

    fn flow(&self, id: u64, start: bool) {
        let Some(rec) = &self.inner else { return };
        if id == 0 {
            return;
        }
        rec.flows.push(FlowRecord {
            id,
            tid: TraceCollector::tid_of(&rec.buf),
            ts_ns: rec.epoch.elapsed().as_nanos() as u64,
            start,
        });
    }

    /// Opens an unannotated span for `phase`; it records when dropped.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span<'_> {
        self.span_with(phase, SpanArgs::EMPTY)
    }

    /// Records a span retroactively: it began at `start` and ends now.
    ///
    /// For call sites that only decide after the fact whether an interval
    /// is worth recording (e.g. a flusher dequeue poll that found work,
    /// as opposed to thousands of idle polls). Returns the duration in
    /// nanoseconds (0 when disabled). Both sequence numbers are taken at
    /// completion, so ordering versus RAII spans on the same thread stays
    /// consistent as long as the retro span does not overlap one — which
    /// single-threaded phase structure guarantees.
    pub fn record_completed(&self, phase: Phase, start: Instant, args: SpanArgs) -> u64 {
        let Some(rec) = &self.inner else { return 0 };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let begin_seq = rec.seq.get();
        rec.seq.set(begin_seq + 2);
        rec.hists[phase.index()].record(dur_ns);
        rec.buf.push(SpanEvent {
            phase,
            begin_ns: start.duration_since(rec.epoch).as_nanos() as u64,
            dur_ns,
            begin_seq,
            end_seq: begin_seq + 1,
            args,
        });
        dur_ns
    }

    /// Opens a span carrying `args` annotations.
    #[inline]
    pub fn span_with(&self, phase: Phase, args: SpanArgs) -> Span<'_> {
        match &self.inner {
            None => Span(None),
            Some(rec) => {
                let start = Instant::now();
                let seq = rec.seq.get();
                rec.seq.set(seq + 1);
                Span(Some(ActiveSpan {
                    rec,
                    phase,
                    start,
                    begin_ns: start.duration_since(rec.epoch).as_nanos() as u64,
                    begin_seq: seq,
                    args,
                }))
            }
        }
    }
}

/// An in-flight phase timing; completes (histogram + trace ring) on drop.
#[must_use = "a span records its phase duration when dropped"]
#[derive(Debug)]
pub struct Span<'a>(Option<ActiveSpan<'a>>);

#[derive(Debug)]
struct ActiveSpan<'a> {
    rec: &'a RecorderInner,
    phase: Phase,
    start: Instant,
    begin_ns: u64,
    begin_seq: u64,
    args: SpanArgs,
}

impl Span<'_> {
    /// Ends the span now and returns its duration in nanoseconds
    /// (0 when telemetry is disabled).
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(a) = self.0.take() else {
            return 0;
        };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        let end_seq = a.rec.seq.get();
        a.rec.seq.set(end_seq + 1);
        a.rec.hists[a.phase.index()].record(dur_ns);
        a.rec.buf.push(SpanEvent {
            phase: a.phase,
            begin_ns: a.begin_ns,
            dur_ns,
            begin_seq: a.begin_seq,
            end_seq,
            args: a.args,
        });
        dur_ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// A histogram-only latency probe for hot call sites shared across
/// threads (priority-queue operations, host-store row traffic).
///
/// Unlike [`Span`], a probe emits no trace events — per-op events would
/// flood the ring — and a disabled probe's [`Probe::time`] compiles down
/// to calling the closure.
#[derive(Debug, Clone, Default)]
pub struct Probe(Option<Arc<Histogram>>);

impl Probe {
    /// A probe that does nothing.
    pub fn disabled() -> Self {
        Probe(None)
    }

    pub(crate) fn enabled(h: Arc<Histogram>) -> Self {
        Probe(Some(h))
    }

    /// Whether this probe records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f`, recording its wall time when enabled.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.0 {
            None => f(),
            Some(h) => {
                let t0 = Instant::now();
                let out = f();
                h.record(t0.elapsed().as_nanos() as u64);
                out
            }
        }
    }

    /// Records an externally measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(h) = &self.0 {
            h.record(ns);
        }
    }

    /// RAII variant of [`Probe::time`]: starts the clock now and records
    /// when the returned guard drops. Useful where the timed region has
    /// multiple exits.
    #[inline]
    pub fn timer(&self) -> ProbeTimer<'_> {
        ProbeTimer(self.0.as_deref().map(|h| (h, Instant::now())))
    }
}

/// Guard returned by [`Probe::timer`]; records its lifetime on drop.
#[derive(Debug)]
pub struct ProbeTimer<'a>(Option<(&'a Histogram, Instant)>);

impl Drop for ProbeTimer<'_> {
    fn drop(&mut self) {
        if let Some((h, t0)) = self.0.take() {
            h.record(t0.elapsed().as_nanos() as u64);
        }
    }
}
