//! Bounded per-thread event rings and Chrome trace-event export.
//!
//! Each recorder thread owns a ring of *completed* spans (begin time,
//! duration, begin/end sequence numbers). Storing completed spans — not
//! raw begin/end events — means ring eviction always drops a span's `B`
//! and `E` together, so exported traces stay balanced no matter how much
//! history was overwritten. The export emits the Chrome trace-event JSON
//! format, loadable in `chrome://tracing` and Perfetto.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonWriter;
use crate::span::{Phase, SpanArgs};

/// Default per-thread ring capacity (completed spans).
pub const DEFAULT_SPANS_PER_THREAD: usize = 16 * 1024;

/// Cap on retained cross-thread flow events (starts + finishes).
pub const DEFAULT_FLOW_EVENTS: usize = 32 * 1024;

/// One half of a cross-thread flow arrow (`ph:"s"` / `ph:"f"` in Chrome
/// trace terms): a flusher batch clearing its in-flight marker (start)
/// or a trainer observing itself unblocked by that batch (finish).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowRecord {
    /// Flow id — the flusher batch id; start/finish pairs share it.
    pub id: u64,
    /// Emitting thread.
    pub tid: u64,
    /// Emission time relative to the telemetry epoch.
    pub ts_ns: u64,
    /// `true` for the flusher-side start, `false` for the trainer-side
    /// finish.
    pub start: bool,
}

/// Bounded shared ring of [`FlowRecord`]s (all threads push here; flow
/// volume is one event per stall or applied batch, far below span
/// volume, so a single mutex-guarded ring is fine).
#[derive(Debug)]
pub(crate) struct FlowSink {
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<FlowRecord>>,
}

impl FlowSink {
    pub fn new(capacity: usize) -> Self {
        FlowSink {
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a flow half-event, evicting the oldest at capacity.
    pub fn push(&self, rec: FlowRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    pub fn snapshot(&self) -> Vec<FlowRecord> {
        self.ring.lock().unwrap().iter().copied().collect()
    }
}

/// One completed span, as stored in a thread ring.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanEvent {
    pub phase: Phase,
    pub begin_ns: u64,
    pub dur_ns: u64,
    pub begin_seq: u64,
    pub end_seq: u64,
    pub args: SpanArgs,
}

/// A single thread's bounded span ring.
#[derive(Debug)]
pub(crate) struct ThreadBuf {
    tid: u64,
    name: String,
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl ThreadBuf {
    /// Appends a completed span, evicting the oldest at capacity.
    pub fn push(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }
}

/// All thread rings for one [`Telemetry`](crate::Telemetry) instance.
#[derive(Debug)]
pub(crate) struct TraceCollector {
    capacity: usize,
    next_tid: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    flows: Arc<FlowSink>,
}

impl TraceCollector {
    pub fn new(spans_per_thread: usize) -> Self {
        TraceCollector {
            capacity: spans_per_thread.max(1),
            next_tid: AtomicU64::new(1),
            threads: Mutex::new(Vec::new()),
            flows: Arc::new(FlowSink::new(DEFAULT_FLOW_EVENTS)),
        }
    }

    /// Creates and registers a ring for a new recorder thread. Returns
    /// the ring and the shared flow sink (flows carry the ring's `tid`).
    pub fn register_thread(&self, name: String) -> (Arc<ThreadBuf>, Arc<FlowSink>) {
        let buf = Arc::new(ThreadBuf {
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
            name,
            capacity: self.capacity,
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        });
        self.threads.lock().unwrap().push(Arc::clone(&buf));
        (buf, Arc::clone(&self.flows))
    }

    /// The thread id a [`ThreadBuf`] was registered with.
    pub fn tid_of(buf: &ThreadBuf) -> u64 {
        buf.tid
    }

    /// Spans evicted across all rings so far.
    pub fn dropped_spans(&self) -> u64 {
        self.threads
            .lock()
            .unwrap()
            .iter()
            .map(|t| t.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Writes the full Chrome trace-event document.
    ///
    /// Per thread, a `thread_name` metadata event is followed by the
    /// span `B`/`E` duration events ordered by the thread's sequence
    /// numbers — which is also timestamp order, since each sequence
    /// number was taken at the moment its event's timestamp was read.
    pub fn write_chrome_trace(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("displayTimeUnit").string("ms");
        w.key("traceEvents").begin_array();
        let threads = self.threads.lock().unwrap();
        for buf in threads.iter() {
            w.begin_object();
            w.key("ph").string("M");
            w.key("name").string("thread_name");
            w.key("pid").number_u64(1);
            w.key("tid").number_u64(buf.tid);
            w.key("args").begin_object();
            w.key("name").string(&buf.name);
            w.end_object();
            w.end_object();

            let ring = buf.ring.lock().unwrap();
            let mut events: Vec<(u64, bool, &SpanEvent)> = Vec::with_capacity(ring.len() * 2);
            for ev in ring.iter() {
                events.push((ev.begin_seq, true, ev));
                events.push((ev.end_seq, false, ev));
            }
            events.sort_unstable_by_key(|(seq, _, _)| *seq);
            for (_, is_begin, ev) in events {
                w.begin_object();
                w.key("ph").string(if is_begin { "B" } else { "E" });
                w.key("name").string(ev.phase.trace_name());
                w.key("cat").string(ev.phase.category());
                w.key("pid").number_u64(1);
                w.key("tid").number_u64(buf.tid);
                let ts_ns = if is_begin {
                    ev.begin_ns
                } else {
                    ev.begin_ns + ev.dur_ns
                };
                w.key("ts").number_f64(ts_ns as f64 / 1_000.0);
                if is_begin && !ev.args.is_empty() {
                    w.key("args").begin_object();
                    for (k, v) in ev.args.iter() {
                        w.key(k).number_u64(v);
                    }
                    w.end_object();
                }
                w.end_object();
            }
        }
        // Cross-thread flow arrows: flusher batch (`s`) → unblocked
        // trainer (`f`, binding point "e" = enclosing slice end).
        for flow in self.flows.snapshot() {
            w.begin_object();
            w.key("ph").string(if flow.start { "s" } else { "f" });
            if !flow.start {
                w.key("bp").string("e");
            }
            w.key("name").string("unblock");
            w.key("cat").string("p2f_unblock");
            w.key("id").number_u64(flow.id);
            w.key("pid").number_u64(1);
            w.key("tid").number_u64(flow.tid);
            w.key("ts").number_f64(flow.ts_ns as f64 / 1_000.0);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(begin_seq: u64, end_seq: u64, begin_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            phase: Phase::Compute,
            begin_ns,
            dur_ns,
            begin_seq,
            end_seq,
            args: SpanArgs::EMPTY,
        }
    }

    #[test]
    fn ring_evicts_whole_spans_and_counts_drops() {
        let tc = TraceCollector::new(2);
        let (buf, _) = tc.register_thread("t".into());
        buf.push(event(0, 1, 0, 10));
        buf.push(event(2, 3, 20, 10));
        buf.push(event(4, 5, 40, 10));
        assert_eq!(tc.dropped_spans(), 1);
        assert_eq!(buf.ring.lock().unwrap().len(), 2);
        assert_eq!(buf.ring.lock().unwrap()[0].begin_seq, 2);
    }

    #[test]
    fn chrome_export_is_balanced_and_ordered() {
        let tc = TraceCollector::new(8);
        let (buf, _) = tc.register_thread("trainer-0".into());
        // Nested spans: outer (seq 0..3) around inner (seq 1..2).
        buf.push(event(1, 2, 5, 10));
        buf.push(event(0, 3, 0, 30));
        let mut w = JsonWriter::new();
        tc.write_chrome_trace(&mut w);
        let doc = crate::json::parse(&w.finish()).expect("trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(crate::json::Json::as_array)
            .unwrap();
        let phs: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(crate::json::Json::as_str))
            .collect();
        assert_eq!(phs, ["M", "B", "B", "E", "E"]);
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(crate::json::Json::as_str) != Some("M"))
            .map(|e| e.get("ts").and_then(crate::json::Json::as_f64).unwrap())
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ts not monotonic: {ts:?}"
        );
    }

    #[test]
    fn flow_events_export_as_s_f_pairs() {
        let tc = TraceCollector::new(8);
        let (fbuf, flows) = tc.register_thread("flusher-0".into());
        let (tbuf, _) = tc.register_thread("trainer-0".into());
        flows.push(FlowRecord {
            id: 7,
            tid: TraceCollector::tid_of(&fbuf),
            ts_ns: 1_000,
            start: true,
        });
        flows.push(FlowRecord {
            id: 7,
            tid: TraceCollector::tid_of(&tbuf),
            ts_ns: 2_000,
            start: false,
        });
        let mut w = JsonWriter::new();
        tc.write_chrome_trace(&mut w);
        let doc = crate::json::parse(&w.finish()).expect("trace must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(crate::json::Json::as_array)
            .unwrap();
        let s = events
            .iter()
            .find(|e| e.get("ph").and_then(crate::json::Json::as_str) == Some("s"))
            .expect("flow start present");
        let f = events
            .iter()
            .find(|e| e.get("ph").and_then(crate::json::Json::as_str) == Some("f"))
            .expect("flow finish present");
        assert_eq!(s.get("id").and_then(crate::json::Json::as_f64), Some(7.0));
        assert_eq!(f.get("id").and_then(crate::json::Json::as_f64), Some(7.0));
        assert_eq!(f.get("bp").and_then(crate::json::Json::as_str), Some("e"));
        assert!(s.get("bp").is_none());
        let ts_s = s.get("ts").and_then(crate::json::Json::as_f64).unwrap();
        let ts_f = f.get("ts").and_then(crate::json::Json::as_f64).unwrap();
        assert!(ts_s <= ts_f);
    }

    #[test]
    fn flow_sink_is_bounded() {
        let sink = FlowSink::new(2);
        for id in 0..5 {
            sink.push(FlowRecord {
                id,
                tid: 1,
                ts_ns: id,
                start: true,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 3);
        assert_eq!(sink.dropped.load(Ordering::Relaxed), 3);
    }
}
