//! The disabled telemetry path must be *dark*: a `Telemetry::off()`
//! handle's hot-path operations — ledger adds, span recording, flow
//! events, stall filing — may allocate nothing and must cost at most a
//! few branches each. The engine calls these on every step of every
//! trainer and flusher, so any hidden cost here taxes un-instrumented
//! runs.

use frugal_telemetry::{LaneKind, LedgerPhase, Phase, SpanArgs, StallRecord, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ITERS: u64 = 100_000;

/// One round of every disabled hot-path operation the engine performs
/// per step. Returns a value the optimizer cannot discard.
fn hot_ops(
    telemetry: &Telemetry,
    lane: &frugal_telemetry::LedgerLane,
    rec: &frugal_telemetry::ThreadRecorder,
    i: u64,
) -> u64 {
    let t = lane.start(); // None when disabled: no clock read
    lane.add(i, LedgerPhase::Compute, 42);
    lane.add_since(i, LedgerPhase::BarrierA, t);
    lane.add_current(LedgerPhase::FlushApply, 7);
    telemetry.ledger_advance(i);
    rec.flow_start(i + 1);
    rec.flow_finish(i + 1);
    telemetry.record_stall(StallRecord {
        step: i,
        wait_ns: 1,
        blocking_priority: i + 1,
        pending_keys: 1,
        queue_depth: 3,
        blocking_key: Some(9),
        cleared_by: 2,
    });
    lane.current_step() + t.map(|_| 1).unwrap_or(0)
}

#[test]
fn disabled_hot_path_never_allocates() {
    let telemetry = Telemetry::off();
    // Setup outside the measured region (the disabled constructors are
    // allocation-free too, but that is not what this test pins down).
    let lane = telemetry.ledger_lane(LaneKind::Trainer);
    let rec = telemetry.recorder("dark");
    assert!(!lane.is_enabled());

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut sink = 0u64;
    for i in 0..ITERS {
        sink = sink.wrapping_add(hot_ops(&telemetry, &lane, &rec, i));
    }
    std::hint::black_box(sink);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated on the hot path"
    );
}

#[test]
fn disabled_hot_path_is_cheap() {
    let telemetry = Telemetry::off();
    let lane = telemetry.ledger_lane(LaneKind::Trainer);
    let rec = telemetry.recorder("dark");

    // Warm up, then time. The bound is deliberately loose (100 ns per
    // full round of ~8 disabled calls, i.e. far under 1% of a ~500 µs
    // engine step even if every call sat on the critical path) so the
    // assertion survives noisy CI boxes while still catching an
    // accidental clock read or lock acquisition sneaking into the
    // disabled path.
    let mut sink = 0u64;
    for i in 0..1_000 {
        sink = sink.wrapping_add(hot_ops(&telemetry, &lane, &rec, i));
    }
    let t0 = Instant::now();
    for i in 0..ITERS {
        sink = sink.wrapping_add(hot_ops(&telemetry, &lane, &rec, i));
    }
    let per_round = t0.elapsed().as_nanos() as u64 / ITERS;
    std::hint::black_box(sink);
    assert!(
        per_round < 100,
        "disabled hot-path round took {per_round} ns (expected branch-only cost)"
    );
}

#[test]
fn disabled_span_recording_is_inert() {
    let telemetry = Telemetry::off();
    let rec = telemetry.recorder("dark");
    let before = ALLOCS.load(Ordering::Relaxed);
    let t = Instant::now();
    // record_completed returns the elapsed time it recorded; disabled
    // recorders return 0 without touching the clock or any buffer.
    let ns = rec.record_completed(Phase::Compute, t, SpanArgs::one("rows", 3));
    assert_eq!(ns, 0);
    assert_eq!(ALLOCS.load(Ordering::Relaxed) - before, 0);
}
