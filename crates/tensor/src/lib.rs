//! # frugal-tensor — dense math substrate for the Frugal reproduction
//!
//! Embedding models are "embedding layer + DNN" (paper Fig 2a). This crate
//! is the DNN half and the optimizer machinery:
//!
//! * [`Matrix`] — minimal row-major `f32` matrix with the products a
//!   backward pass needs.
//! * [`Mlp`] — fully connected network with exact gradients (the paper's
//!   DLRM head is `512-512-256-1`).
//! * [`bce_with_logits`] / [`margin_ranking`] — the CTR and knowledge-graph
//!   training losses.
//! * [`RowOptimizer`] ([`Sgd`], [`Adagrad`]) — the per-row update that
//!   Frugal's flushing threads apply to the host parameter store.
//!
//! DNN *time* is modeled by `frugal-sim`; this crate supplies the *numerics*
//! so convergence and consistency tests run real training.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod loss;
mod matrix;
mod mlp;
mod optim;

pub use loss::{bce_with_logits, margin_ranking, sigmoid};
pub use matrix::Matrix;
pub use mlp::{ForwardPass, Linear, LinearGrad, Mlp};
pub use optim::{Adagrad, RowOptimizer, Sgd};
