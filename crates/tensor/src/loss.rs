//! Loss functions used by the embedding models.
//!
//! * [`bce_with_logits`] — binary cross-entropy for CTR prediction (DLRM).
//! * [`margin_ranking`] — the max-margin loss TransE-style KG models train
//!   with (positive triple score vs. negative-sample scores).

/// Numerically stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy with logits.
///
/// Returns `(mean_loss, d_logits)` where `d_logits[i] = (σ(x_i) - y_i) / n`
/// — the gradient of the mean loss w.r.t. each logit.
///
/// # Panics
///
/// Panics if `logits` and `labels` differ in length or are empty.
///
/// # Examples
///
/// ```
/// use frugal_tensor::bce_with_logits;
///
/// let (loss, grad) = bce_with_logits(&[0.0, 2.0], &[0.0, 1.0]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.len(), 2);
/// ```
pub fn bce_with_logits(logits: &[f32], labels: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), labels.len(), "length mismatch");
    assert!(!logits.is_empty(), "empty batch");
    let n = logits.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(logits.len());
    for (&x, &y) in logits.iter().zip(labels) {
        // Stable form: max(x,0) - x*y + ln(1 + exp(-|x|)).
        loss += x.max(0.0) - x * y + (-x.abs()).exp().ln_1p();
        grad.push((sigmoid(x) - y) / n);
    }
    (loss / n, grad)
}

/// Margin ranking loss over one positive score and its negative scores:
/// `mean_j max(0, margin + s_pos - s_neg_j)` for *distance-like* scores
/// where smaller is better (TransE convention).
///
/// Returns `(loss, d_pos, d_negs)`.
///
/// # Panics
///
/// Panics if `neg_scores` is empty.
pub fn margin_ranking(pos_score: f32, neg_scores: &[f32], margin: f32) -> (f32, f32, Vec<f32>) {
    assert!(!neg_scores.is_empty(), "need at least one negative sample");
    let n = neg_scores.len() as f32;
    let mut loss = 0.0;
    let mut d_pos = 0.0;
    let mut d_negs = Vec::with_capacity(neg_scores.len());
    for &s_neg in neg_scores {
        let m = margin + pos_score - s_neg;
        if m > 0.0 {
            loss += m;
            d_pos += 1.0;
            d_negs.push(-1.0 / n);
        } else {
            d_negs.push(0.0);
        }
    }
    (loss / n, d_pos / n, d_negs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        let x = 1.7;
        assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bce_perfect_prediction_is_low() {
        let (loss_good, _) = bce_with_logits(&[8.0, -8.0], &[1.0, 0.0]);
        let (loss_bad, _) = bce_with_logits(&[-8.0, 8.0], &[1.0, 0.0]);
        assert!(loss_good < 0.01);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = [0.3f32, -1.2, 2.0];
        let labels = [1.0f32, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &labels);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let (fp, _) = bce_with_logits(&lp, &labels);
            let (fm, _) = bce_with_logits(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 1e-3,
                "i={i} analytic {} numeric {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn bce_stable_at_extreme_logits() {
        let (loss, grad) = bce_with_logits(&[100.0, -100.0], &[1.0, 0.0]);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bce_rejects_mismatched_lengths() {
        let _ = bce_with_logits(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    fn margin_loss_zero_when_well_separated() {
        // Positive distance 0.1, negatives at distance 10: margin satisfied.
        let (loss, d_pos, d_negs) = margin_ranking(0.1, &[10.0, 12.0], 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(d_pos, 0.0);
        assert!(d_negs.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn margin_loss_active_when_violated() {
        let (loss, d_pos, d_negs) = margin_ranking(5.0, &[1.0, 2.0], 1.0);
        // Both negatives violate: (1+5-1) + (1+5-2) = 9, mean 4.5.
        assert!((loss - 4.5).abs() < 1e-6);
        assert!((d_pos - 1.0).abs() < 1e-6);
        assert_eq!(d_negs, vec![-0.5, -0.5]);
    }

    #[test]
    fn margin_gradient_matches_finite_difference() {
        let pos = 1.4f32;
        let negs = [1.0f32, 3.0, 1.8];
        let (_, d_pos, d_negs) = margin_ranking(pos, &negs, 1.0);
        let eps = 1e-3;
        let f = |p: f32, ns: &[f32]| margin_ranking(p, ns, 1.0).0;
        let numeric_pos = (f(pos + eps, &negs) - f(pos - eps, &negs)) / (2.0 * eps);
        assert!((d_pos - numeric_pos).abs() < 1e-3);
        for i in 0..3 {
            let mut np = negs;
            np[i] += eps;
            let mut nm = negs;
            nm[i] -= eps;
            let numeric = (f(pos, &np) - f(pos, &nm)) / (2.0 * eps);
            assert!((d_negs[i] - numeric).abs() < 1e-3, "neg {i}");
        }
    }
}
