//! A minimal row-major `f32` matrix.
//!
//! Sized for the DNN part of embedding models (paper: a 512-512-256-1 MLP),
//! where the heavy lifting is batched matrix multiplication. Deliberately
//! dependency-free: correctness and determinism matter more here than peak
//! FLOPS, because DNN *time* is accounted by the hardware cost model while
//! this code provides the *numerics* for convergence tests.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use frugal_tensor::Matrix;
///
/// let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
/// let b = Matrix::from_rows(3, 1, &[1., 0., 1.]);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), &[4., 10.]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a matrix taking ownership of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                *o = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Adds `rhs` scaled by `alpha` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Applies a function element-wise, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        let b = Matrix::from_rows(2, 2, &[5., 6., 7., 8.]);
        assert_eq!(a.matmul(&b).as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_rows(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(3, 2, &[1., 0., 0., 1., 1., 1.]);
        // aᵀ b computed by hand: aᵀ is 2x3.
        let expect = Matrix::from_rows(2, 3, &[1., 3., 5., 2., 4., 6.]).matmul(&b);
        assert_eq!(a.t_matmul(&b), expect);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(2, 3, &[1., 1., 0., 0., 1., 1.]);
        let bt = Matrix::from_rows(3, 2, &[1., 0., 1., 1., 0., 1.]);
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_rows(1, 3, &[1., 2., 3.]);
        let b = Matrix::from_rows(1, 3, &[10., 10., 10.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6., 7., 8.]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut a = Matrix::from_rows(1, 3, &[-1., 0., 2.]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.as_slice(), &[0., 0., 2.]);
    }

    #[test]
    fn row_accessors() {
        let mut a = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.;
        assert_eq!(a.as_slice(), &[1., 9., 3., 4.]);
        assert_eq!((a.rows(), a.cols()), (2, 2));
        assert_eq!(a.to_string(), "Matrix(2x2)");
    }

    #[test]
    fn from_vec_owns() {
        let m = Matrix::from_vec(1, 2, vec![7., 8.]);
        assert_eq!(m.as_slice(), &[7., 8.]);
    }
}
