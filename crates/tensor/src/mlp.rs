//! A multi-layer perceptron with ReLU hidden activations.
//!
//! This is the "DNN part" of the embedding models (paper Fig 2a): DLRM runs
//! a fully connected 512-512-256-1 network over the aggregated embeddings.
//! The implementation provides exact forward/backward passes (verified by
//! finite differences in the tests) and a [`Mlp::flops_per_sample`] figure
//! for the hardware cost model.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fully connected layer: `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix, // in x out
    bias: Vec<f32>,
}

impl Linear {
    /// Xavier-uniform initialization with a deterministic seed.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (inputs + outputs) as f32).sqrt();
        let data: Vec<f32> = (0..inputs * outputs)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Linear {
            weight: Matrix::from_vec(inputs, outputs, data),
            bias: vec![0.0; outputs],
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.weight.cols()
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight);
        for r in 0..y.rows() {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        y
    }
}

/// Gradients of one layer produced by a backward pass.
#[derive(Debug, Clone)]
pub struct LinearGrad {
    /// Gradient of the weight matrix.
    pub weight: Matrix,
    /// Gradient of the bias vector.
    pub bias: Vec<f32>,
}

/// An MLP: linear layers with ReLU between them and a linear final output.
///
/// # Examples
///
/// ```
/// use frugal_tensor::{Matrix, Mlp};
///
/// // The paper's DLRM head: 32-dim pooled embeddings -> 512-512-256-1.
/// let mlp = Mlp::new(&[32, 512, 512, 256, 1], 7);
/// let x = Matrix::zeros(4, 32);
/// let y = mlp.forward(&x).output().clone();
/// assert_eq!((y.rows(), y.cols()), (4, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

/// Cached activations from [`Mlp::forward`], consumed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardPass {
    /// `acts[0]` is the input; `acts[i]` the post-activation of layer `i-1`.
    acts: Vec<Matrix>,
}

impl ForwardPass {
    /// The network output (logits).
    pub fn output(&self) -> &Matrix {
        self.acts.last().expect("forward produces >= 1 activation")
    }
}

impl Mlp {
    /// Builds an MLP with the given layer widths (`dims[0]` is the input).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer widths including the input.
    pub fn dims(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.layers.iter().map(|l| l.inputs()).collect();
        d.push(self.layers.last().expect("non-empty").outputs());
        d
    }

    /// FLOPs of one forward+backward pass per sample (the standard `6 m n`
    /// estimate: 2 for forward, 4 for backward per weight).
    pub fn flops_per_sample(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| 6.0 * (l.inputs() * l.outputs()) as f64)
            .sum()
    }

    /// Forward pass; returns the cached activations.
    pub fn forward(&self, x: &Matrix) -> ForwardPass {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(acts.last().expect("non-empty"));
            if i + 1 < self.layers.len() {
                y.map_inplace(|v| v.max(0.0)); // ReLU on hidden layers
            }
            acts.push(y);
        }
        ForwardPass { acts }
    }

    /// Backward pass from `d_out` (gradient w.r.t. the logits).
    ///
    /// Returns per-layer gradients and the gradient w.r.t. the input
    /// (needed to backpropagate into the embedding layer).
    ///
    /// # Panics
    ///
    /// Panics if `pass` was produced by a different-shaped network.
    pub fn backward(&self, pass: &ForwardPass, d_out: &Matrix) -> (Vec<LinearGrad>, Matrix) {
        assert_eq!(pass.acts.len(), self.layers.len() + 1, "pass mismatch");
        let mut grads: Vec<Option<LinearGrad>> = (0..self.layers.len()).map(|_| None).collect();
        let mut delta = d_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &pass.acts[i];
            // dW = inputᵀ delta ; db = column sums of delta.
            let weight = input.t_matmul(&delta);
            let mut bias = vec![0.0f32; layer.outputs()];
            for r in 0..delta.rows() {
                for (b, &d) in bias.iter_mut().zip(delta.row(r)) {
                    *b += d;
                }
            }
            grads[i] = Some(LinearGrad { weight, bias });
            // d_input = delta @ Wᵀ, masked by the ReLU derivative of the
            // previous layer's activation (hidden layers only).
            let mut d_in = delta.matmul_t(&layer.weight);
            if i > 0 {
                let act = &pass.acts[i];
                for r in 0..d_in.rows() {
                    let a = act.row(r).to_vec();
                    for (v, &av) in d_in.row_mut(r).iter_mut().zip(&a) {
                        if av <= 0.0 {
                            *v = 0.0;
                        }
                    }
                }
            }
            delta = d_in;
        }
        let grads = grads.into_iter().map(|g| g.expect("filled")).collect();
        (grads, delta)
    }

    /// Applies SGD with learning rate `lr` to all layers.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the layer count.
    pub fn apply_sgd(&mut self, grads: &[LinearGrad], lr: f32) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count mismatch");
        for (layer, g) in self.layers.iter_mut().zip(grads) {
            layer.weight.axpy(-lr, &g.weight);
            for (b, &db) in layer.bias.iter_mut().zip(&g.bias) {
                *b -= lr * db;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_of(mlp: &Mlp, x: &Matrix, target: &[f32]) -> f32 {
        let out = mlp.forward(x);
        out.output()
            .as_slice()
            .iter()
            .zip(target)
            .map(|(&y, &t)| 0.5 * (y - t) * (y - t))
            .sum()
    }

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[8, 16, 4, 1], 1);
        let x = Matrix::zeros(5, 8);
        let p = mlp.forward(&x);
        assert_eq!((p.output().rows(), p.output().cols()), (5, 1));
        assert_eq!(mlp.n_layers(), 3);
        assert_eq!(mlp.dims(), vec![8, 16, 4, 1]);
    }

    #[test]
    fn flops_formula() {
        let mlp = Mlp::new(&[32, 512, 512, 256, 1], 0);
        let expect = 6.0 * (32. * 512. + 512. * 512. + 512. * 256. + 256. * 1.);
        assert_eq!(mlp.flops_per_sample(), expect);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW on a small network.
        let mut mlp = Mlp::new(&[3, 4, 1], 42);
        let x = Matrix::from_rows(2, 3, &[0.5, -0.2, 0.8, 1.0, 0.3, -0.7]);
        let target = [1.0f32, 0.0];

        let pass = mlp.forward(&x);
        let d_out = Matrix::from_vec(
            2,
            1,
            pass.output()
                .as_slice()
                .iter()
                .zip(&target)
                .map(|(&y, &t)| y - t)
                .collect(),
        );
        let (grads, _) = mlp.backward(&pass, &d_out);

        let eps = 1e-3f32;
        for (li, g) in grads.iter().enumerate() {
            for wi in [0usize, 1, 2] {
                let analytic = g.weight.as_slice()[wi];
                let orig = mlp.layers[li].weight.as_mut_slice()[wi];
                mlp.layers[li].weight.as_mut_slice()[wi] = orig + eps;
                let lp = loss_of(&mlp, &x, &target);
                mlp.layers[li].weight.as_mut_slice()[wi] = orig - eps;
                let lm = loss_of(&mlp, &x, &target);
                mlp.layers[li].weight.as_mut_slice()[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2,
                    "layer {li} w{wi}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        // The input gradient feeds the embedding layer, so it must be exact.
        let mlp = Mlp::new(&[3, 5, 1], 11);
        let mut xdata = vec![0.3f32, -0.6, 0.9];
        let target = [0.5f32];
        let pass = mlp.forward(&Matrix::from_rows(1, 3, &xdata));
        let d_out = Matrix::from_vec(1, 1, vec![pass.output().as_slice()[0] - target[0]]);
        let (_, d_in) = mlp.backward(&pass, &d_out);

        let eps = 1e-3f32;
        for i in 0..3 {
            let orig = xdata[i];
            xdata[i] = orig + eps;
            let lp = loss_of(&mlp, &Matrix::from_rows(1, 3, &xdata), &target);
            xdata[i] = orig - eps;
            let lm = loss_of(&mlp, &Matrix::from_rows(1, 3, &xdata), &target);
            xdata[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = d_in.as_slice()[i];
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "input {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn sgd_reduces_regression_loss() {
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        let x = Matrix::from_rows(4, 2, &[0., 0., 0., 1., 1., 0., 1., 1.]);
        let target = [0.0f32, 1.0, 1.0, 0.0]; // XOR
        let initial = loss_of(&mlp, &x, &target);
        for _ in 0..500 {
            let pass = mlp.forward(&x);
            let d_out = Matrix::from_vec(
                4,
                1,
                pass.output()
                    .as_slice()
                    .iter()
                    .zip(&target)
                    .map(|(&y, &t)| y - t)
                    .collect(),
            );
            let (grads, _) = mlp.backward(&pass, &d_out);
            mlp.apply_sgd(&grads, 0.05);
        }
        let fin = loss_of(&mlp, &x, &target);
        assert!(fin < initial * 0.2, "loss {initial} -> {fin}");
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[4, 4, 1], 9);
        let b = Mlp::new(&[4, 4, 1], 9);
        let x = Matrix::from_rows(1, 4, &[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(
            a.forward(&x).output().as_slice(),
            b.forward(&x).output().as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate_dims() {
        let _ = Mlp::new(&[4], 0);
    }
}
