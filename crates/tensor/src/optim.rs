//! Optimizers for embedding rows.
//!
//! Embedding updates in Frugal travel as `(step, Δ)` pairs through the
//! update staging queue and are applied to the host parameter store by the
//! flushing threads (paper §3.2). The [`RowOptimizer`] trait is that apply
//! step. SGD is stateless, which is what makes multi-engine *bit-equality*
//! tests possible; Adagrad carries per-row state like production systems.

use frugal_data::Key;
use std::collections::HashMap;

/// Applies one gradient to one embedding row.
///
/// Implementations must be deterministic: the same `(key, param, grad)`
/// sequence must produce the same parameters on every run, since Frugal's
/// consistency argument (paper §3.3) promises results identical to
/// synchronous training.
pub trait RowOptimizer: Send {
    /// Updates `param` in place using `grad` for embedding row `key`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `param` and `grad` lengths differ.
    fn update_row(&mut self, key: Key, param: &mut [f32], grad: &[f32]);

    /// The learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replaces the per-row state for `key` (no-op for stateless
    /// optimizers). Used to synchronize a replica optimizer with another
    /// instance that has already consumed part of the key's gradient
    /// sequence.
    fn seed_state(&mut self, _key: Key, _state: Vec<f32>) {}
}

/// Plain stochastic gradient descent: `p ← p − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        Sgd { lr }
    }
}

impl RowOptimizer for Sgd {
    fn update_row(&mut self, _key: Key, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/gradient length mismatch");
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with per-row accumulated squared gradients — the optimizer most
/// production embedding systems (including DLRM) use for sparse features.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    state: HashMap<Key, Vec<f32>>,
}

impl Adagrad {
    /// Creates Adagrad with learning rate `lr` and stability epsilon 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        Adagrad {
            lr,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Number of rows with accumulated state.
    pub fn state_rows(&self) -> usize {
        self.state.len()
    }
}

impl RowOptimizer for Adagrad {
    fn seed_state(&mut self, key: Key, state: Vec<f32>) {
        self.state.insert(key, state);
    }

    fn update_row(&mut self, key: Key, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "row/gradient length mismatch");
        let acc = self
            .state
            .entry(key)
            .or_insert_with(|| vec![0.0; param.len()]);
        for ((p, &g), a) in param.iter_mut().zip(grad).zip(acc.iter_mut()) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_applies_expected_delta() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0f32, 2.0];
        opt.update_row(0, &mut p, &[10.0, -10.0]);
        assert_eq!(p, vec![0.0, 3.0]);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    #[should_panic(expected = "learning rate must be > 0")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_rejects_mismatched_grad() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0f32];
        opt.update_row(0, &mut p, &[1.0, 2.0]);
    }

    #[test]
    fn adagrad_shrinks_effective_lr_over_time() {
        let mut opt = Adagrad::new(0.5);
        let mut p = vec![0.0f32];
        opt.update_row(7, &mut p, &[1.0]);
        let first_step = -p[0];
        let before = p[0];
        opt.update_row(7, &mut p, &[1.0]);
        let second_step = before - p[0];
        assert!(first_step > second_step, "{first_step} vs {second_step}");
        assert_eq!(opt.state_rows(), 1);
    }

    #[test]
    fn adagrad_state_is_per_key() {
        let mut opt = Adagrad::new(0.5);
        let mut p1 = vec![0.0f32];
        let mut p2 = vec![0.0f32];
        opt.update_row(1, &mut p1, &[1.0]);
        opt.update_row(1, &mut p1, &[1.0]);
        opt.update_row(2, &mut p2, &[1.0]);
        // Key 2's first step is as large as key 1's first step was.
        assert!(p2[0].abs() > (p1[0].abs() / 2.0));
        assert_eq!(opt.state_rows(), 2);
    }

    #[test]
    fn sgd_is_deterministic_across_instances() {
        let run = || {
            let mut opt = Sgd::new(0.01);
            let mut p = vec![0.5f32, -0.5];
            for i in 0..100 {
                opt.update_row(i % 3, &mut p, &[0.1, -0.2]);
            }
            p
        };
        assert_eq!(run(), run());
    }
}
