//! Reproduce the paper's headline economics (Exp #9): Frugal on commodity
//! RTX 3090s approaches the throughput of existing systems on datacenter
//! A30s — at a fraction of the hardware price.
//!
//! ```sh
//! cargo run --release --example commodity_vs_datacenter
//! ```

use frugal::baselines::{BaselineConfig, BaselineEngine};
use frugal::core::{presets, PullToTarget};
use frugal::data::{KeyDistribution, SyntheticTrace};
use frugal::sim::{GpuSpec, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_gpus = 4;
    let steps = 10;
    let dim = 32;
    let trace = SyntheticTrace::new(500_000, KeyDistribution::Zipf(0.9), 1024, n_gpus, 1)?;
    let model = PullToTarget::new(dim, 7);

    // Existing system (HugeCTR-style) on datacenter A30s: P2P collectives,
    // full UVA — the best case for the old architecture.
    let dc = BaselineEngine::new(
        BaselineConfig::hugectr(Topology::datacenter(n_gpus), steps),
        trace.n_keys(),
        dim,
    );
    let dc_report = dc.run(&trace, &model);

    // The same architecture moved to commodity 3090s: bounced collectives,
    // CPU-involved miss path.
    let commodity_old = BaselineEngine::new(
        BaselineConfig::hugectr(Topology::commodity(n_gpus), steps),
        trace.n_keys(),
        dim,
    );
    let commodity_old_report = commodity_old.run(&trace, &model);

    // Frugal on the same commodity hardware.
    let cfg = presets::demo_commodity(n_gpus, steps);
    let frugal = presets::build_engine(cfg, trace.n_keys(), dim)?;
    let frugal_report = frugal.run(&trace, &model);

    let a30 = GpuSpec::a30();
    let r3090 = GpuSpec::rtx3090();
    let dc_price = n_gpus as f64 * a30.price_usd;
    let cm_price = n_gpus as f64 * r3090.price_usd;

    println!("{n_gpus} GPUs, batch 1024/GPU, Zipf-0.9 over 500k keys\n");
    println!(
        "{:<28} {:>12} {:>10} {:>16}",
        "configuration", "samples/s", "price $", "samples/s per $"
    );
    let row = |name: &str, thr: f64, price: f64| {
        println!("{name:<28} {thr:>12.0} {price:>10.0} {:>16.1}", thr / price);
    };
    row("HugeCTR on 4x A30", dc_report.throughput(), dc_price);
    row(
        "HugeCTR on 4x RTX 3090",
        commodity_old_report.throughput(),
        cm_price,
    );
    row(
        "Frugal on 4x RTX 3090",
        frugal_report.throughput(),
        cm_price,
    );

    let thr_ratio = frugal_report.throughput() / dc_report.throughput();
    let cost_eff = (frugal_report.throughput() / cm_price) / (dc_report.throughput() / dc_price);
    println!(
        "\nFrugal reaches {:.0}% of datacenter throughput at {:.1}x better cost-efficiency",
        thr_ratio * 100.0,
        cost_eff
    );
    println!("(paper Exp #9: 89-97% of throughput, 4.0-4.3x cost-effectiveness)");
    Ok(())
}
