//! Train knowledge-graph embeddings (TransE on an FB15k-shaped graph) with
//! Frugal — the paper's KG scenario — and sweep the four scorers of
//! Exp #11.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use frugal::core::presets;
use frugal::data::{KgDatasetSpec, KgTrace};
use frugal::models::{KgModel, KgScorer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FB15k's shape at reduced embedding dimension (paper: dim 400).
    let mut spec = KgDatasetSpec::fb15k();
    spec.embedding_dim = 32;
    spec.neg_sample_size = 16;
    let n_gpus = 2;
    let steps = 60;

    println!(
        "graph: {} ({} entities, {} relations), TransE-style training",
        spec.name, spec.n_entities, spec.n_relations
    );
    println!("server: {n_gpus}x RTX 3090 (simulated), {steps} steps\n");

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "scorer", "triples/s", "first loss", "last loss"
    );
    for scorer in KgScorer::all() {
        let trace = KgTrace::new(spec.clone(), 64, n_gpus, 17)?;
        // Real scorer math (margin-ranking over negative samples).
        let model = KgModel::new(scorer, trace.clone(), 5, true);
        let mut cfg = presets::demo_commodity(n_gpus, steps);
        cfg.lr = 0.03;
        let engine = presets::build_engine(cfg, spec.n_entities, 32)?;
        let report = engine.run(&trace, &model);
        println!(
            "{:<10} {:>12.0} {:>12.4} {:>12.4}",
            scorer.name(),
            report.throughput(),
            report.first_loss,
            report.final_loss
        );
    }

    println!("\nEvery scorer trains through the same embedding runtime;");
    println!("the margin loss falls as positives separate from negatives.");
    Ok(())
}
