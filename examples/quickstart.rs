//! Quickstart: train an embedding model with Frugal on a simulated
//! commodity-GPU server, and see what proactive flushing buys.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use frugal::core::presets;
use frugal::core::PullToTarget;
use frugal::data::{KeyDistribution, SyntheticTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A skewed embedding workload: 100k keys, Zipf-0.9 popularity,
    // batch 512 per GPU, 4 simulated RTX 3090s.
    let trace = SyntheticTrace::new(100_000, KeyDistribution::Zipf(0.9), 512, 4, 42)?;

    // The embedding-only microbenchmark model (dim 32): every accessed row
    // is pulled toward a per-key target, so the loss visibly converges.
    let model = PullToTarget::new(32, 7);

    // Paper defaults scaled for a demo run: 5% cache, lookahead L = 10,
    // one flushing thread per GPU, two-level priority queue, P2F flushing.
    let mut cfg = presets::demo_commodity(4, 30);
    cfg.lr = 2.0; // gradients are mean-normalized; a higher rate converges fast

    let engine = presets::build_engine(cfg, trace.n_keys(), 32)?;

    println!("training 30 steps on 4 simulated RTX 3090s...");
    let report = engine.run(&trace, &model);

    println!("loss: {:.4} -> {:.4}", report.first_loss, report.final_loss);
    println!("throughput: {:.0} samples/s", report.throughput());
    println!("cache hit ratio: {:.1}%", report.hit_ratio * 100.0);
    let mean = report.mean_iter();
    println!(
        "per-iteration: comm {} | host DRAM {} | cache {} | other {} | stall {}",
        mean.comm, mean.host_dram, mean.cache, mean.other, mean.stall
    );
    println!(
        "g-entry updates (P2F bookkeeping): {} per step",
        report.mean_gentry_update
    );

    // The whole point of synchronous consistency: the concurrent run is
    // bit-identical to a single-threaded reference.
    let serial = frugal::core::train_serial(&trace, &model, 30, 2.0, 42);
    let check_key = 12_345;
    assert_eq!(
        engine.store().row_vec(check_key),
        serial.store.row_vec(check_key),
        "P2F must match synchronous training exactly"
    );
    println!("verified: parameters are bit-identical to the serial reference");
    Ok(())
}
