//! Train DLRM on an Avazu-shaped recommendation workload — the paper's
//! REC scenario (§4.1) — and compare Frugal against the PyTorch- and
//! HugeCTR-style baselines on the same simulated commodity server.
//!
//! ```sh
//! cargo run --release --example recommendation_dlrm
//! ```

use frugal::baselines::{BaselineConfig, BaselineEngine};
use frugal::core::{presets, TrainReport};
use frugal::data::{RecDatasetSpec, RecTrace};
use frugal::models::Dlrm;
use frugal::sim::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Avazu's shape (22 sparse features, Zipf-skewed IDs), scaled from
    // 49M IDs to 200k so the host store fits a laptop.
    let spec = RecDatasetSpec::avazu().scaled_to_ids(200_000);
    let n_gpus = 4;
    let steps = 10;
    let trace = RecTrace::new(spec.clone(), 768, n_gpus, 3)?;
    let dim = spec.embedding_dim as usize;

    println!(
        "dataset: {} ({} IDs, {} features, dim {dim})",
        spec.name, spec.n_ids, spec.n_features
    );
    println!("server: {n_gpus}x RTX 3090 (simulated), {steps} steps\n");

    // Real DLRM math: mean-pooled embeddings -> small MLP -> BCE loss.
    // (The paper's 512-512-256-1 head is available as `Dlrm::paper`; the
    // narrower head keeps this example fast on small machines.)
    let make_model = || Dlrm::new(trace.clone(), &[dim, 64, 32, 1], 0.02, 9, true);

    let mut results: Vec<(&str, TrainReport)> = Vec::new();

    // PyTorch-like: no cache, CPU-involved host access.
    let base = BaselineEngine::new(
        BaselineConfig::pytorch(Topology::commodity(n_gpus), steps),
        spec.n_ids,
        dim,
    );
    results.push(("PyTorch", base.run(&trace, &make_model())));

    // HugeCTR-like: sharded multi-GPU cache + all_to_all.
    let ctr = BaselineEngine::new(
        BaselineConfig::hugectr(Topology::commodity(n_gpus), steps),
        spec.n_ids,
        dim,
    );
    results.push(("HugeCTR", ctr.run(&trace, &make_model())));

    // Frugal: proactive flushing + two-level PQ.
    let cfg = presets::demo_commodity(n_gpus, steps);
    let frugal = presets::build_engine(cfg, spec.n_ids, dim)?;
    results.push(("Frugal", frugal.run(&trace, &make_model())));

    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>10}",
        "system", "samples/s", "hit ratio", "first BCE", "last BCE"
    );
    for (name, r) in &results {
        println!(
            "{:<10} {:>14.0} {:>11.1}% {:>10.4} {:>10.4}",
            name,
            r.throughput(),
            r.hit_ratio * 100.0,
            r.first_loss,
            r.final_loss
        );
    }

    let frugal_thr = results[2].1.throughput();
    let pytorch_thr = results[0].1.throughput();
    println!(
        "\nFrugal / PyTorch speedup: {:.2}x (paper Fig 14: 4.9-7.4x at full scale)",
        frugal_thr / pytorch_thr
    );
    Ok(())
}
