//! A command-line training driver over the whole system — pick a workload,
//! a system, and a topology, and get the paper's metrics back.
//!
//! ```sh
//! cargo run --release --example train -- \
//!     --workload rec --system frugal --gpus 4 --batch 512 --steps 20
//! cargo run --release --example train -- --workload kg --system hugectr
//! cargo run --release --example train -- --workload micro --system pytorch \
//!     --datacenter --cache-ratio 0.10
//! ```
//!
//! Set `FRUGAL_TRACE=<path>` to enable telemetry: the run prints its metric
//! summary and writes a Chrome trace-event file (load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>):
//!
//! ```sh
//! FRUGAL_TRACE=trace.json cargo run --release --example train
//! ```

use frugal::baselines::{BaselineConfig, BaselineEngine, BaselineKind};
use frugal::core::{
    EmbeddingModel, FrugalConfig, FrugalEngine, PullToTarget, TrainReport, Workload,
};
use frugal::data::{
    KeyDistribution, KgDatasetSpec, KgTrace, RecDatasetSpec, RecTrace, SyntheticTrace,
};
use frugal::embed::CachePolicy;
use frugal::models::{Dlrm, KgModel, KgScorer};
use frugal::sim::Topology;
use frugal::telemetry::Telemetry;

#[derive(Debug)]
struct Args {
    workload: String,
    system: String,
    gpus: usize,
    batch: usize,
    steps: u64,
    cache_ratio: f64,
    cache_policy: CachePolicy,
    flush_threads: usize,
    keys: u64,
    datacenter: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            workload: "micro".into(),
            system: "frugal".into(),
            gpus: 4,
            batch: 512,
            steps: 20,
            cache_ratio: 0.05,
            cache_policy: CachePolicy::StaticHot,
            flush_threads: 8,
            keys: 1_000_000,
            datacenter: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let take = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--workload" => args.workload = take(&argv, i, "--workload")?,
                "--system" => args.system = take(&argv, i, "--system")?,
                "--gpus" => {
                    args.gpus = take(&argv, i, "--gpus")?
                        .parse()
                        .map_err(|e| format!("--gpus: {e}"))?
                }
                "--batch" => {
                    args.batch = take(&argv, i, "--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?
                }
                "--steps" => {
                    args.steps = take(&argv, i, "--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?
                }
                "--cache-ratio" => {
                    args.cache_ratio = take(&argv, i, "--cache-ratio")?
                        .parse()
                        .map_err(|e| format!("--cache-ratio: {e}"))?
                }
                "--cache-policy" => {
                    args.cache_policy = take(&argv, i, "--cache-policy")?
                        .parse()
                        .map_err(|e| format!("--cache-policy: {e}"))?
                }
                "--flush-threads" => {
                    args.flush_threads = take(&argv, i, "--flush-threads")?
                        .parse()
                        .map_err(|e| format!("--flush-threads: {e}"))?
                }
                "--keys" => {
                    args.keys = take(&argv, i, "--keys")?
                        .parse()
                        .map_err(|e| format!("--keys: {e}"))?
                }
                "--datacenter" => {
                    args.datacenter = true;
                    i += 1;
                    continue;
                }
                "--help" | "-h" => {
                    println!(
                        "usage: train [--workload micro|rec|kg] [--system frugal|frugal-sync|frugal-fifo|pytorch|hugectr|uvm]\n\
                         \x20            [--gpus N] [--batch N] [--steps N] [--cache-ratio F]\n\
                         \x20            [--cache-policy static-hot|lru|freq|oracle]\n\
                         \x20            [--flush-threads N] [--keys N] [--datacenter]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 2;
        }
        Ok(args)
    }
}

fn run(
    args: &Args,
    workload: &dyn Workload,
    model: &dyn EmbeddingModel,
    telemetry: &Telemetry,
) -> Result<TrainReport, String> {
    let topology = if args.datacenter {
        Topology::datacenter(args.gpus)
    } else {
        Topology::commodity(args.gpus)
    };
    match args.system.as_str() {
        "frugal" | "frugal-sync" | "frugal-fifo" => {
            let mut cfg = FrugalConfig::commodity(args.gpus, args.steps);
            cfg.cost = frugal::sim::CostModel::new(topology);
            cfg.cache_ratio = args.cache_ratio;
            cfg.cache_policy = args.cache_policy;
            cfg.flush_threads = args.flush_threads;
            cfg.telemetry = telemetry.clone();
            match args.system.as_str() {
                "frugal-sync" => cfg = cfg.write_through(),
                "frugal-fifo" => cfg = cfg.fifo(),
                _ => {}
            }
            // Report bad flag combinations as an error instead of the
            // engine's construction panic.
            cfg.validate().map_err(|e| e.to_string())?;
            let engine = FrugalEngine::new(cfg, workload.n_keys(), model.dim());
            Ok(engine.run(workload, model))
        }
        "pytorch" | "hugectr" | "uvm" => {
            let mut cfg = BaselineConfig::pytorch(topology, args.steps);
            cfg.kind = match args.system.as_str() {
                "pytorch" => BaselineKind::NoCache,
                "hugectr" => BaselineKind::Cached,
                _ => BaselineKind::Uvm,
            };
            cfg.cache_ratio = args.cache_ratio;
            cfg.cache_policy = args.cache_policy;
            cfg.telemetry = telemetry.clone();
            let engine = BaselineEngine::new(cfg, workload.n_keys(), model.dim());
            Ok(engine.run(workload, model))
        }
        other => Err(format!("unknown system {other}")),
    }
}

fn main() -> Result<(), String> {
    let args = Args::parse()?;
    println!("{args:?}\n");

    let trace_path = std::env::var("FRUGAL_TRACE").ok();
    let telemetry = if trace_path.is_some() {
        Telemetry::new()
    } else {
        Telemetry::off()
    };

    let report = match args.workload.as_str() {
        "micro" => {
            let trace = SyntheticTrace::new(
                args.keys,
                KeyDistribution::Zipf(0.9),
                args.batch,
                args.gpus,
                42,
            )
            .map_err(|e| e.to_string())?;
            let model = PullToTarget::new(32, 7);
            run(&args, &trace, &model, &telemetry)?
        }
        "rec" => {
            let spec = RecDatasetSpec::avazu().scaled_to_ids(args.keys);
            let trace = RecTrace::new(spec.clone(), args.batch, args.gpus, 42)
                .map_err(|e| e.to_string())?;
            let dim = spec.embedding_dim as usize;
            let model = Dlrm::new(trace.clone(), &[dim, 512, 512, 256, 1], 0.01, 7, false);
            run(&args, &trace, &model, &telemetry)?
        }
        "kg" => {
            let spec = KgDatasetSpec::freebase().scaled_to_entities(args.keys.min(200_000));
            let trace =
                KgTrace::new(spec.clone(), args.batch, args.gpus, 42).map_err(|e| e.to_string())?;
            let model = KgModel::new(KgScorer::TransE, trace.clone(), 7, false);
            run(&args, &trace, &model, &telemetry)?
        }
        other => return Err(format!("unknown workload {other}")),
    };

    let m = report.mean_iter();
    println!("throughput       {:>12.0} samples/s", report.throughput());
    println!("cache hit ratio  {:>11.1}%", report.hit_ratio * 100.0);
    if report.cache_fills > 0 {
        println!(
            "cache fills      {:>12} rows ({:.0} ns/row)",
            report.cache_fills,
            report.mean_cache_fill_ns_row()
        );
    }
    if report.cache_prefetch_fills > 0 {
        println!(
            "prefetch fills   {:>12} rows (overlapped with stall)",
            report.cache_prefetch_fills
        );
    }
    println!("per-iteration breakdown:");
    println!("  comm      {}", m.comm);
    println!("  host DRAM {}", m.host_dram);
    println!("  cache     {}", m.cache);
    println!("  other     {}", m.other);
    println!("  stall     {}", m.stall);
    if report.mean_gentry_update.as_nanos() > 0 {
        println!(
            "g-entry updates  {:>12} per step",
            report.mean_gentry_update.to_string()
        );
    }
    if let Some(summary) = &report.telemetry {
        println!("\ntelemetry:\n{}", summary.render());
    }
    if let Some(path) = &trace_path {
        telemetry
            .write_chrome_trace(path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("Chrome trace written to {path} (open in chrome://tracing)");
    }
    Ok(())
}
