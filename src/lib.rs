//! # frugal — reproduction of the ASPLOS '25 Frugal system
//!
//! Facade crate re-exporting every subsystem of the reproduction. See the
//! individual crates for details:
//!
//! * [`sim`] — hardware cost model (GPUs, PCIe, host memory).
//! * [`data`] — synthetic workloads and datasets.
//! * [`tensor`] — dense math substrate (MLP, optimizers, losses).
//! * [`pq`] — the two-level concurrent priority queue and its tree-heap
//!   baseline.
//! * [`embed`] — embedding tables, host parameter store, multi-GPU caches.
//! * [`core`] — the P²F algorithm, controller, flushing threads, and the
//!   Frugal / Frugal-Sync training engines.
//! * [`baselines`] — PyTorch-, HugeCTR-, DGL-KE- and UVM-like comparators.
//! * [`models`] — DLRM and the knowledge-graph scorers.
//! * [`telemetry`] — dependency-free metrics, phase spans, and Chrome-trace
//!   export for all of the above.

#![warn(missing_docs)]

pub use frugal_baselines as baselines;
pub use frugal_core as core;
pub use frugal_data as data;
pub use frugal_embed as embed;
pub use frugal_models as models;
pub use frugal_pq as pq;
pub use frugal_sim as sim;
pub use frugal_telemetry as telemetry;
pub use frugal_tensor as tensor;
