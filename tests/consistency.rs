//! Cross-crate consistency tests: the executable form of the paper's §3.3
//! proof that P²F preserves synchronous training consistency.

use frugal::baselines::{BaselineConfig, BaselineEngine, BaselineKind};
use frugal::core::{train_serial, FrugalConfig, FrugalEngine, PqKind, PullToTarget};
use frugal::data::{KeyDistribution, SyntheticTrace};
use frugal::sim::Topology;

const N_KEYS: u64 = 600;
const DIM: usize = 8;
const STEPS: u64 = 20;

fn trace(n_gpus: usize) -> SyntheticTrace {
    SyntheticTrace::new(N_KEYS, KeyDistribution::Zipf(0.9), 48, n_gpus, 77).unwrap()
}

fn frugal_cfg(n_gpus: usize) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(n_gpus, STEPS);
    cfg.flush_threads = 3;
    cfg.lookahead = 6;
    cfg
}

/// Every engine — serial, Frugal (both PQs), Frugal-Sync, and all three
/// baselines — must produce *bit-identical* parameters on the same trace.
#[test]
fn all_engines_agree_bitwise() {
    let t = trace(2);
    let model = PullToTarget::new(DIM, 5);
    let reference = train_serial(&t, &model, STEPS, 0.1, 42);

    let mut stores: Vec<(String, Vec<Vec<f32>>)> = Vec::new();

    for pq in [PqKind::TwoLevel, PqKind::TreeHeap] {
        let mut cfg = frugal_cfg(2);
        cfg.pq = pq;
        let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
        engine.run(&t, &model);
        stores.push((
            format!("frugal-{pq:?}"),
            (0..N_KEYS).map(|k| engine.store().row_vec(k)).collect(),
        ));
    }
    {
        let engine = FrugalEngine::new(frugal_cfg(2).write_through(), N_KEYS, DIM);
        engine.run(&t, &model);
        stores.push((
            "frugal-sync".into(),
            (0..N_KEYS).map(|k| engine.store().row_vec(k)).collect(),
        ));
    }
    {
        // The arrival-order flush ablation: unselective priorities, but
        // still synchronously consistent.
        let engine = FrugalEngine::new(frugal_cfg(2).fifo(), N_KEYS, DIM);
        engine.run(&t, &model);
        stores.push((
            "frugal-fifo".into(),
            (0..N_KEYS).map(|k| engine.store().row_vec(k)).collect(),
        ));
    }
    for kind in [
        BaselineKind::NoCache,
        BaselineKind::Cached,
        BaselineKind::Uvm,
    ] {
        let mut cfg = BaselineConfig::pytorch(Topology::commodity(2), STEPS);
        cfg.kind = kind;
        cfg.cache_ratio = 0.1;
        let engine = BaselineEngine::new(cfg, N_KEYS, DIM);
        engine.run(&t, &model);
        stores.push((
            format!("baseline-{kind:?}"),
            (0..N_KEYS).map(|k| engine.store().row_vec(k)).collect(),
        ));
    }

    for (name, rows) in &stores {
        for k in 0..N_KEYS {
            assert_eq!(
                rows[k as usize],
                reference.store.row_vec(k),
                "{name} diverged from serial at key {k}"
            );
        }
    }
}

/// The full-scale trainer cohort: 8 trainers (the paper's 8-GPU commodity
/// testbed) over both PQs and the FIFO ablation must stay bit-identical to
/// the serial oracle. This is the regime the compact g-entry store, the
/// pure-load PQ bound fast path, and the spin barrier were built for;
/// batch 48 divides evenly across 8 GPUs, so every trainer carries
/// micro-batches every step.
#[test]
fn eight_trainers_agree_with_serial_bitwise() {
    let t = trace(8);
    let model = PullToTarget::new(DIM, 5);
    let reference = train_serial(&t, &model, STEPS, 0.1, 42);
    let mut runs: Vec<(String, FrugalConfig)> = Vec::new();
    for pq in [PqKind::TwoLevel, PqKind::TreeHeap] {
        let mut cfg = frugal_cfg(8);
        cfg.pq = pq;
        runs.push((format!("frugal-{pq:?}-8gpu"), cfg));
    }
    runs.push(("frugal-fifo-8gpu".into(), frugal_cfg(8).fifo()));
    // Checked mode at 8 trainers: the invariant checker and the seqlock
    // race detector must also stay silent at full width.
    runs.push(("frugal-checked-8gpu".into(), frugal_cfg(8).checked()));
    // The double-buffered sample pipeline across lookahead depths: L = 1
    // (ring holds 3 slots, rewritten almost immediately), a mid depth, and
    // L > STEPS (every step's batch is published before step 0 finishes).
    // Publish/consume races or a slot rewritten before its blocking-rows
    // count would show up as a divergence here.
    for lookahead in [1u64, 3, STEPS + 5] {
        let mut cfg = frugal_cfg(8);
        cfg.lookahead = lookahead;
        runs.push((format!("frugal-8gpu-L{lookahead}"), cfg));
    }
    // Write-through at 8 trainers: the sharded (parallel) host apply path.
    runs.push(("frugal-sync-8gpu".into(), frugal_cfg(8).write_through()));
    // Every cache policy at full trainer width: policies only move copies,
    // never semantics, and the owner-cache update order is pinned by the
    // same per-owner update slots the reduce publishes.
    for policy in frugal::embed::CachePolicy::ALL {
        runs.push((
            format!("frugal-8gpu-{}", policy.label()),
            frugal_cfg(8).with_cache_policy(policy),
        ));
    }
    for (name, cfg) in runs {
        let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
        let report = engine.run(&t, &model);
        assert_eq!(report.violations, 0, "{name}: invariant (2) violated");
        assert_eq!(report.races, 0, "{name}: host-row data race detected");
        for k in 0..N_KEYS {
            assert_eq!(
                engine.store().row_vec(k),
                reference.store.row_vec(k),
                "{name} diverged from serial at key {k}"
            );
        }
    }
}

/// Checked mode observes zero invariant violations and zero seqlock races
/// across many flush threads and trainers.
#[test]
fn p2f_checked_mode_is_clean_under_stress() {
    let t = SyntheticTrace::new(400, KeyDistribution::Zipf(0.99), 64, 4, 9).unwrap();
    let model = PullToTarget::new(4, 3);
    let mut cfg = FrugalConfig::commodity(4, 30).checked();
    cfg.flush_threads = 6;
    cfg.lookahead = 3;
    let engine = FrugalEngine::new(cfg, 400, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.violations, 0, "invariant (2) violated");
    assert_eq!(report.races, 0, "host-row data race detected");
}

/// Failure injection: disabling the P²F wait condition must be *caught* by
/// the consistency checker — proving the checker works and that the wait
/// condition is load-bearing.
#[test]
fn skipping_wait_condition_breaks_consistency() {
    // Uniform keys over a space barely larger than the per-step footprint:
    // every step writes ~14k unique rows that the next step reads again, so
    // a single flusher cannot drain between steps and unsynchronized reads
    // must hit rows with pending updates.
    let t = SyntheticTrace::new(16_384, KeyDistribution::Uniform, 4_096, 4, 13).unwrap();
    let model = PullToTarget::new(16, 3);
    let mut cfg = FrugalConfig::commodity(4, 12).checked();
    cfg.flush_threads = 1;
    cfg.flush_batch = 8;
    cfg.flush_throttle_us = 500; // a starved flusher cannot hide the race
    cfg.skip_wait = true;
    cfg.lookahead = 4;
    let engine = FrugalEngine::new(cfg, 16_384, 16);
    let report = engine.run(&t, &model);
    assert!(
        report.violations > 0 || report.races > 0,
        "expected consistency violations once the wait condition is skipped \
         (got violations={}, races={})",
        report.violations,
        report.races
    );
}

/// The flushing pipeline drains completely: after a run, re-reading the
/// store equals the serial result even for keys only written early on
/// (deferred ∞-priority flushes must not be lost at shutdown).
#[test]
fn deferred_updates_are_never_lost() {
    // Uniform keys on a big space: most keys are written once and never
    // read again, living in the ∞ bucket until the final drain.
    let t = SyntheticTrace::new(5_000, KeyDistribution::Uniform, 64, 2, 21).unwrap();
    let model = PullToTarget::new(4, 1);
    let engine = FrugalEngine::new(frugal_cfg(2), 5_000, 4);
    engine.run(&t, &model);
    let serial = train_serial(&t, &model, STEPS, 0.1, 42);
    for k in 0..5_000 {
        assert_eq!(
            engine.store().row_vec(k),
            serial.store.row_vec(k),
            "key {k}"
        );
    }
}

/// Varying the number of flushing threads must not change the result.
#[test]
fn flush_thread_count_does_not_affect_parameters() {
    let t = trace(2);
    let model = PullToTarget::new(DIM, 5);
    let mut results = Vec::new();
    for threads in [1usize, 2, 6] {
        let mut cfg = frugal_cfg(2);
        cfg.flush_threads = threads;
        let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
        engine.run(&t, &model);
        results.push(
            (0..N_KEYS)
                .map(|k| engine.store().row_vec(k))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

/// The cache policy is a performance knob, never a semantics knob: every
/// eviction policy — including the Belady oracle, whose prefetch fills run
/// *during* the P²F stall wait — must leave the host store bit-identical
/// to the serial oracle. Caches only ever hold copies that see the same
/// per-key gradient sequence as the host rows, so which keys happen to be
/// resident (or prefetched) cannot change the parameters.
#[test]
fn every_cache_policy_agrees_with_serial_bitwise() {
    use frugal::embed::CachePolicy;
    for n_gpus in [2usize, 4] {
        let t = trace(n_gpus);
        let model = PullToTarget::new(DIM, 5);
        let reference = train_serial(&t, &model, STEPS, 0.1, 42);
        for policy in CachePolicy::ALL {
            let cfg = frugal_cfg(n_gpus).with_cache_policy(policy);
            let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
            engine.run(&t, &model);
            for k in 0..N_KEYS {
                assert_eq!(
                    engine.store().row_vec(k),
                    reference.store.row_vec(k),
                    "{}-{n_gpus}gpu diverged from serial at key {k}",
                    policy.label()
                );
            }
        }
    }
}

/// Adagrad keeps per-row state on both the host path (flushing threads) and
/// the owner-cache path; both see the same per-key gradient sequence, so
/// the concurrent engine must still match the serial reference bitwise.
#[test]
fn adagrad_matches_serial_reference() {
    use frugal::core::{train_serial_with, OptimizerKind};
    let t = trace(2);
    let model = PullToTarget::new(DIM, 5);
    let mut cfg = frugal_cfg(2);
    cfg.optimizer = OptimizerKind::Adagrad;
    cfg.lr = 0.5;
    let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
    engine.run(&t, &model);
    let serial = train_serial_with(&t, &model, STEPS, 0.5, 42, OptimizerKind::Adagrad);
    for k in 0..N_KEYS {
        assert_eq!(
            engine.store().row_vec(k),
            serial.store.row_vec(k),
            "Adagrad diverged at key {k}"
        );
    }
}
