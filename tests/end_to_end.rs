//! End-to-end training runs with the real models (DLRM, KG scorers)
//! through the full Frugal engine.

use frugal::core::{FrugalConfig, FrugalEngine, TrainReport};
use frugal::data::{KgDatasetSpec, KgTrace, RecDatasetSpec, RecTrace};
use frugal::models::{Dlrm, KgModel, KgScorer};

fn small_rec_trace(n_gpus: usize, batch: usize) -> RecTrace {
    let mut spec = RecDatasetSpec::avazu().scaled_to_ids(2_000);
    spec.embedding_dim = 8;
    RecTrace::new(spec, batch, n_gpus, 7).unwrap()
}

#[test]
fn dlrm_trains_end_to_end_through_frugal() {
    let trace = small_rec_trace(2, 64);
    let model = Dlrm::new(trace.clone(), &[8, 32, 1], 0.05, 3, true);
    let mut cfg = FrugalConfig::commodity(2, 40);
    cfg.flush_threads = 2;
    cfg.lr = 1.0;
    let engine = FrugalEngine::new(cfg, trace.spec().n_ids, 8);
    let report = engine.run(&trace, &model);
    assert_eq!(report.stats.len(), 40);
    assert!(
        report.final_loss < report.first_loss,
        "BCE should improve: {} -> {}",
        report.first_loss,
        report.final_loss
    );
    assert_eq!(report.violations, 0);
}

#[test]
fn transe_trains_end_to_end_through_frugal() {
    let mut spec = KgDatasetSpec::fb15k().scaled_to_entities(500);
    spec.embedding_dim = 8;
    spec.neg_sample_size = 8;
    let trace = KgTrace::new(spec.clone(), 32, 2, 11).unwrap();
    let model = KgModel::new(KgScorer::TransE, trace.clone(), 5, true);
    let mut cfg = FrugalConfig::commodity(2, 80);
    cfg.flush_threads = 2;
    cfg.lr = 0.03; // L1 sign gradients accumulate across shared negatives

    let engine = FrugalEngine::new(cfg, spec.n_entities, 8);
    let report = engine.run(&trace, &model);
    // The structured synthetic graph is learnable: the margin loss falls.
    assert!(
        report.final_loss < report.first_loss,
        "margin loss should improve: {} -> {}",
        report.first_loss,
        report.final_loss
    );
}

#[test]
fn every_kg_scorer_runs_through_the_engine() {
    let mut spec = KgDatasetSpec::fb15k().scaled_to_entities(300);
    spec.embedding_dim = 8;
    spec.neg_sample_size = 4;
    for scorer in KgScorer::all() {
        let trace = KgTrace::new(spec.clone(), 16, 2, 13).unwrap();
        let model = KgModel::new(scorer, trace.clone(), 5, true);
        let mut cfg = FrugalConfig::commodity(2, 8);
        cfg.flush_threads = 2;
        let engine = FrugalEngine::new(cfg, spec.n_entities, 8);
        let report: TrainReport = engine.run(&trace, &model);
        assert!(report.throughput() > 0.0, "{}", scorer.name());
        assert!(report.final_loss.is_finite());
    }
}

#[test]
fn dlrm_depth_sweep_runs() {
    // Exp #11's depth sensitivity, smoke-tested end to end.
    let trace = small_rec_trace(2, 32);
    for depth in [2usize, 4, 6] {
        let mut dims = vec![8usize];
        dims.extend(std::iter::repeat_n(16, depth.saturating_sub(2)));
        dims.push(8);
        dims.push(1);
        let model = Dlrm::new(trace.clone(), &dims, 0.05, 3, true);
        let mut cfg = FrugalConfig::commodity(2, 5);
        cfg.flush_threads = 2;
        let engine = FrugalEngine::new(cfg, trace.spec().n_ids, 8);
        let report = engine.run(&trace, &model);
        assert!(report.throughput() > 0.0, "depth {depth}");
    }
}

#[test]
fn hit_ratio_rises_with_cache_size() {
    let trace = small_rec_trace(2, 128);
    let mut ratios = Vec::new();
    for cache_ratio in [0.01, 0.05, 0.20] {
        let model = Dlrm::new(trace.clone(), &[8, 16, 1], 0.05, 3, false);
        let mut cfg = FrugalConfig::commodity(2, 15);
        cfg.flush_threads = 2;
        cfg.cache_ratio = cache_ratio;
        let engine = FrugalEngine::new(cfg, trace.spec().n_ids, 8);
        let report = engine.run(&trace, &model);
        ratios.push(report.hit_ratio);
    }
    assert!(
        ratios[0] < ratios[2],
        "bigger caches should hit more: {ratios:?}"
    );
}

#[test]
fn dlrm_training_improves_auc() {
    use frugal::models::auc;
    let trace = small_rec_trace(2, 96);
    let model = Dlrm::new(trace.clone(), &[8, 32, 1], 0.05, 3, true);
    let dim = 8;

    // Score a held-out step (beyond the training horizon) before/after.
    let eval = |store: &frugal::embed::HostStore| {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for gpu in 0..2 {
            let batch = trace.step_batch(900, gpu);
            let mut rows = vec![0.0f32; batch.keys.len() * dim];
            for (i, &k) in batch.keys.iter().enumerate() {
                store.read_row(k, &mut rows[i * dim..(i + 1) * dim]);
            }
            scores.extend(model.predict(&batch.keys, &rows));
            labels.extend(batch.labels.clone());
        }
        auc(&scores, &labels)
    };

    let mut cfg = FrugalConfig::commodity(2, 60);
    cfg.flush_threads = 2;
    cfg.lr = 1.0;
    let engine = FrugalEngine::new(cfg, trace.spec().n_ids, dim);
    let before = eval(engine.store());
    engine.run(&trace, &model);
    let after = eval(engine.store());
    assert!(
        after > before && after > 0.55,
        "AUC should improve: {before:.3} -> {after:.3}"
    );
}

#[test]
fn checkpoint_roundtrips_a_trained_store() {
    use frugal::embed::{load_checkpoint, save_checkpoint, HostStore};
    let trace = small_rec_trace(2, 32);
    let model = Dlrm::new(trace.clone(), &[8, 16, 1], 0.05, 3, false);
    let mut cfg = FrugalConfig::commodity(2, 10);
    cfg.flush_threads = 2;
    let engine = FrugalEngine::new(cfg, trace.spec().n_ids, 8);
    engine.run(&trace, &model);

    let mut buf = Vec::new();
    save_checkpoint(engine.store(), &mut buf).unwrap();
    let restored = HostStore::new(trace.spec().n_ids, 8, 999);
    load_checkpoint(&restored, buf.as_slice()).unwrap();
    for k in (0..trace.spec().n_ids).step_by(37) {
        assert_eq!(engine.store().row_vec(k), restored.row_vec(k));
    }
}
