//! Integration tests for the critical-path profiler: the per-step phase
//! ledger must cover every step of a multi-GPU run with balanced,
//! contiguous records; stall provenance must pair each trainer unblock to
//! exactly one flusher apply via Chrome-trace flow events; and the FIFO
//! ablation must actually measure its stalls (the regression the profiler
//! was built to catch).

use frugal::core::{FrugalConfig, FrugalEngine, PullToTarget, TrainReport};
use frugal::data::{KeyDistribution, SyntheticTrace};
use frugal::telemetry::json::{self, Json};
use frugal::telemetry::{LedgerPhase, Telemetry};

const N_KEYS: u64 = 5_000;
const STEPS: u64 = 40;
const N_GPUS: usize = 3;

/// A 3-GPU run with two flushers. `throttle_us > 0` slows every flush
/// batch down, forcing a backlog and therefore real trainer stalls.
fn profiled_run(telemetry: &Telemetry, throttle_us: u64, fifo: bool) -> TrainReport {
    let trace = SyntheticTrace::new(N_KEYS, KeyDistribution::Zipf(0.9), 64, N_GPUS, 17).unwrap();
    let model = PullToTarget::new(8, 3);
    let mut cfg = FrugalConfig::commodity(N_GPUS, STEPS)
        .checked()
        .with_telemetry(telemetry.clone());
    if fifo {
        cfg = cfg.fifo();
    }
    cfg.flush_threads = 2;
    cfg.cache_ratio = 0.02;
    cfg.flush_throttle_us = throttle_us;
    let engine = FrugalEngine::new(cfg, trace.n_keys(), 8);
    engine.run(&trace, &model)
}

#[test]
fn ledger_covers_every_step_balanced_and_contiguous() {
    let telemetry = Telemetry::new();
    profiled_run(&telemetry, 0, false);
    let ledger = telemetry.ledger_summary().expect("telemetry was on");

    // Every step of the run is retained (the window is far larger), and
    // the window is contiguous: steps [0, STEPS).
    assert_eq!(ledger.window, STEPS, "one ledger record per step");
    assert_eq!(ledger.first_step, 0);
    assert_eq!(ledger.last_step, STEPS - 1);
    assert_eq!(
        ledger.last_step - ledger.first_step + 1,
        ledger.window,
        "window must be contiguous"
    );

    // Balanced: every phase reports exactly one (possibly zero-valued)
    // sample per retained step — no phase over- or under-counts.
    for p in &ledger.phases {
        assert_eq!(
            p.steps,
            ledger.window,
            "phase {} must cover the whole window",
            p.phase.name()
        );
    }

    // The phases every trainer executes every step carry real time.
    for phase in [
        LedgerPhase::Sample,
        LedgerPhase::CacheQuery,
        LedgerPhase::Compute,
        LedgerPhase::BarrierA,
        LedgerPhase::Registration,
        LedgerPhase::LeaderApply,
    ] {
        let s = ledger.phase(phase).expect("phase present");
        assert!(s.total_ns > 0, "{} recorded no time", phase.name());
        assert!(
            s.max_ns >= s.p95_ns && s.p95_ns >= s.p50_ns,
            "percentiles ordered"
        );
    }
    // The flusher lanes recorded background work too.
    let fa = ledger.phase(LedgerPhase::FlushApply).expect("flush_apply");
    assert!(fa.total_ns > 0, "flushers applied batches");
}

#[test]
fn flow_events_pair_each_unblock_to_one_apply() {
    let telemetry = Telemetry::new();
    profiled_run(&telemetry, 200, false);

    // Throttled flushers force a backlog: the stall log must carry
    // provenance (the batch that cleared the wait, and the queue state
    // seen when blocking).
    let summary = telemetry.summary().expect("telemetry was on");
    let with_provenance: Vec<_> = summary
        .stalls
        .records
        .iter()
        .filter(|r| r.cleared_by > 0)
        .collect();
    assert!(
        !with_provenance.is_empty(),
        "throttled run must produce stalls attributed to a flush batch"
    );

    // Every trainer-side flow finish ("f") pairs with exactly one
    // flusher-side start ("s") of the same batch id, and the finish is
    // timestamped at or after its start (the flusher stamps the batch
    // before clearing the marker the trainer waits on).
    let doc = telemetry.chrome_trace_json().expect("telemetry was on");
    let root = json::parse(&doc).expect("valid trace JSON");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    let mut starts: Vec<(u64, f64)> = Vec::new();
    let mut finishes: Vec<(u64, f64)> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "s" && ph != "f" {
            continue;
        }
        let id = ev.get("id").and_then(Json::as_f64).expect("flow id") as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("flow ts");
        if ph == "s" {
            starts.push((id, ts));
        } else {
            finishes.push((id, ts));
        }
    }
    assert!(!finishes.is_empty(), "stalled run must emit unblock arrows");
    for (id, ts_f) in &finishes {
        let matching: Vec<_> = starts.iter().filter(|(sid, _)| sid == id).collect();
        assert_eq!(
            matching.len(),
            1,
            "finish id {id} must pair with exactly one apply"
        );
        assert!(
            *ts_f >= matching[0].1,
            "unblock at {ts_f} precedes its apply at {}",
            matching[0].1
        );
    }
}

#[test]
fn fifo_ablation_measures_nonzero_stalls() {
    // The FIFO strategy counts its own written-key backlog at registration
    // time (not the post-drain pending set, which the flushers usually
    // empty before the C-leader reads it — the bug that froze
    // `fifo_p95_stall_ns` at 0). A throttled run must therefore model
    // nonzero stalls.
    let telemetry = Telemetry::off();
    let report = profiled_run(&telemetry, 100, true);
    assert!(
        report.stats.stall_percentile(0.95).as_nanos() > 0,
        "throttled FIFO run must record nonzero modeled stalls"
    );
}
