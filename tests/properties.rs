//! Property-based tests (proptest) over the core invariants.

use frugal::core::{train_serial, FrugalConfig, FrugalEngine, PqKind, PullToTarget};
use frugal::data::{KeyDistribution, SyntheticTrace, Zipf};
use frugal::embed::{CachePolicy, GpuCache};
use frugal::pq::{PriorityQueue, TreeHeap, TwoLevelPq, INFINITE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zipf samples always land in the key space, for any valid parameters.
    #[test]
    fn zipf_samples_in_range(n in 1u64..100_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, theta).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Two-level PQ: dequeue order is non-decreasing in priority, nothing
    /// is lost, ∞ entries come last.
    #[test]
    fn two_level_pq_orders_and_preserves(
        entries in proptest::collection::vec((0u64..10_000, 0u64..64), 1..200),
    ) {
        let pq = TwoLevelPq::new(64);
        let mut expected: Vec<(u64, u64)> = Vec::new();
        let mut seen_keys = std::collections::HashSet::new();
        for &(key, p) in &entries {
            if seen_keys.insert(key) {
                let priority = if p == 63 { INFINITE } else { p };
                pq.enqueue(key, priority);
                expected.push((key, priority));
            }
        }
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        prop_assert_eq!(out.len(), expected.len());
        // Non-decreasing priorities.
        for w in out.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "priority order violated");
        }
        // Same key set.
        let mut got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        let mut want: Vec<u64> = expected.iter().map(|&(k, _)| k).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert!(pq.is_empty());
    }

    /// adjust() never loses an entry, whatever the move sequence.
    #[test]
    fn pq_adjust_preserves_entries(
        moves in proptest::collection::vec((0u64..32, 0u64..20), 1..100),
    ) {
        let pq = TwoLevelPq::new(32);
        let mut position: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(key, p) in &moves {
            match position.get(&key) {
                None => {
                    pq.enqueue(key, p);
                    position.insert(key, p);
                }
                Some(&old) if old != p => {
                    pq.adjust(key, old, p);
                    position.insert(key, p);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        // Stale copies may surface; validate against authoritative position
        // exactly like the flusher does.
        let mut live: std::collections::HashSet<u64> = position.keys().copied().collect();
        for (k, p) in out {
            if position.get(&k) == Some(&p) {
                live.remove(&k);
            }
        }
        prop_assert!(live.is_empty(), "entries lost: {live:?}");
    }

    /// Tree heap agrees with a sorted reference on pure enqueue/dequeue.
    #[test]
    fn treeheap_orders(entries in proptest::collection::vec((0u64..1000, 0u64..50), 1..100)) {
        let pq = TreeHeap::new();
        for &(k, p) in &entries {
            pq.enqueue(k, p);
        }
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        let mut prios: Vec<u64> = out.iter().map(|&(_, p)| p).collect();
        let mut sorted = prios.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&prios[..], &sorted[..]);
        prios.sort_unstable();
        prop_assert_eq!(prios.len(), entries.len());
    }

    /// LRU cache never exceeds capacity and keeps the most recent key.
    #[test]
    fn lru_cache_bounds(ops in proptest::collection::vec(0u64..64, 1..300), cap in 1usize..16) {
        let mut cache = GpuCache::new(cap, 1, CachePolicy::Lru);
        for &k in &ops {
            if cache.get(&k).is_none() {
                cache.insert_from_slice(k, &[k as f32]);
            }
            prop_assert!(cache.len() <= cap);
        }
        let last = *ops.last().unwrap();
        prop_assert!(cache.contains(&last), "most recent key evicted");
    }
}

proptest! {
    // Engine runs are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline property: for random shapes, a fully concurrent Frugal
    /// run is bit-identical to the serial reference.
    #[test]
    fn frugal_matches_serial_on_random_configs(
        n_keys in 64u64..800,
        batch in 8usize..64,
        steps in 3u64..15,
        theta in 0.0f64..1.2,
        flush_threads in 1usize..5,
        tree_heap in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let t = SyntheticTrace::new(n_keys, KeyDistribution::Zipf(theta), batch, 2, seed).unwrap();
        let model = PullToTarget::new(4, seed ^ 1);
        let mut cfg = FrugalConfig::commodity(2, steps);
        cfg.flush_threads = flush_threads;
        cfg.lookahead = 3;
        cfg.pq = if tree_heap { PqKind::TreeHeap } else { PqKind::TwoLevel };
        let lr = cfg.lr;
        let engine = FrugalEngine::new(cfg, n_keys, 4);
        engine.run(&t, &model);
        let serial = train_serial(&t, &model, steps, lr, 42);
        for k in 0..n_keys {
            prop_assert_eq!(engine.store().row_vec(k), serial.store.row_vec(k), "key {}", k);
        }
    }
}
