//! Integration tests for the telemetry pipeline: registry counters must
//! agree with the engine's own report, and the exported Chrome trace must
//! be well-formed without any external JSON library.

use frugal::core::{FrugalConfig, FrugalEngine, PullToTarget};
use frugal::data::{KeyDistribution, SyntheticTrace};
use frugal::telemetry::json::{self, Json};
use frugal::telemetry::Telemetry;

/// One checked-mode 2-GPU run with telemetry attached.
fn instrumented_run(telemetry: &Telemetry) -> frugal::core::TrainReport {
    let trace = SyntheticTrace::new(5_000, KeyDistribution::Zipf(0.9), 64, 2, 31).unwrap();
    let model = PullToTarget::new(8, 3);
    let mut cfg = FrugalConfig::commodity(2, 25)
        .checked()
        .with_telemetry(telemetry.clone());
    cfg.flush_threads = 2;
    cfg.cache_ratio = 0.02;
    let engine = FrugalEngine::new(cfg, trace.n_keys(), 8);
    engine.run(&trace, &model)
}

#[test]
fn registry_counters_match_the_report() {
    let telemetry = Telemetry::new();
    let report = instrumented_run(&telemetry);
    let summary = report.telemetry.as_ref().expect("telemetry was on");

    let hits = summary.counter("cache.hits").expect("cache.hits");
    let misses = summary.counter("cache.misses").expect("cache.misses");
    assert!(hits + misses > 0, "the run looked up keys");

    // hit_ratio is defined as hits over the same two counters.
    let expected = hits as f64 / (hits + misses) as f64;
    assert!(
        (report.hit_ratio - expected).abs() < 1e-12,
        "hit_ratio {} != {hits}/({hits}+{misses})",
        report.hit_ratio
    );

    // Checked mode with no failure injection: the P2F invariant holds.
    assert_eq!(summary.counter("p2f.violations"), Some(0));
    assert_eq!(report.violations, 0);

    // Every cache miss reads one host row.
    assert_eq!(summary.counter("store.row_reads"), Some(misses));

    // Each of the 2 trainers timed every phase of every step.
    let compute = summary.histogram("trainer.compute_ns").expect("compute");
    assert_eq!(compute.count, 2 * 25);
}

#[test]
fn chrome_trace_is_valid_balanced_and_monotonic() {
    let telemetry = Telemetry::new();
    instrumented_run(&telemetry);
    let doc = telemetry.chrome_trace_json().expect("telemetry was on");

    let root = json::parse(&doc).expect("trace must be valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Count B/E per thread and check per-thread ts never goes backwards.
    // Flow events ("s"/"f" — cross-thread unblock arrows) are exported
    // after the duration events and checked separately for pairing.
    let mut open: Vec<(f64, i64, i64)> = Vec::new(); // (last_ts, depth, tid)
    let mut flow_starts: Vec<f64> = Vec::new();
    let mut flow_finishes: Vec<f64> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue; // thread_name metadata carries no ts
        }
        if ph == "s" || ph == "f" {
            assert_eq!(
                ev.get("cat").and_then(Json::as_str),
                Some("p2f_unblock"),
                "flow events carry the unblock category"
            );
            let id = ev.get("id").and_then(Json::as_f64).expect("flow id");
            assert!(id > 0.0, "flow ids are nonzero batch ids");
            if ph == "s" {
                flow_starts.push(id);
            } else {
                flow_finishes.push(id);
            }
            continue;
        }
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let slot = match open.iter_mut().find(|(_, _, t)| *t == tid) {
            Some(s) => s,
            None => {
                open.push((f64::MIN, 0, tid));
                open.last_mut().unwrap()
            }
        };
        assert!(
            ts >= slot.0,
            "thread {tid}: ts went backwards ({ts} < {})",
            slot.0
        );
        slot.0 = ts;
        match ph {
            "B" => slot.1 += 1,
            "E" => slot.1 -= 1,
            other => panic!("unexpected phase {other}"),
        }
        assert!(slot.1 >= 0, "thread {tid}: E without matching B");
    }
    assert!(open.len() >= 2, "at least the two trainer threads traced");
    for (_, depth, tid) in &open {
        assert_eq!(*depth, 0, "thread {tid}: unbalanced B/E events");
    }
    // Every trainer-side flow finish refers to a flusher batch that
    // emitted a start (the rings are large enough that nothing evicted).
    for id in &flow_finishes {
        assert!(
            flow_starts.contains(id),
            "flow finish id {id} has no matching start"
        );
    }
}

#[test]
fn disabled_telemetry_stays_dark() {
    let telemetry = Telemetry::off();
    let report = instrumented_run(&telemetry);
    assert!(report.telemetry.is_none());
    assert!(telemetry.chrome_trace_json().is_none());
    assert!(telemetry.metrics_jsonl().is_none());
    assert!(!telemetry
        .write_chrome_trace("/nonexistent/should-not-write")
        .unwrap_or(true));
}
