//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian framing surface the checkpoint module uses:
//! [`BytesMut`] as a growable byte buffer implementing [`BufMut`], and
//! [`Buf`] for `&[u8]` cursors. See `crates/vendor/README.md` for why
//! external dependencies are vendored.

#![warn(missing_docs)]

use std::ops::Deref;

/// Read cursor over a byte source; reading advances the cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for little-endian framing.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable, clearable byte buffer (`Vec<u8>` with the `bytes` surface).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u64_le(0xDEAD_BEEF_0123_4567);
        b.put_u32_le(77);
        b.put_f32_le(2.5);
        assert_eq!(b.len(), 4 + 8 + 4 + 4);

        let mut cur: &[u8] = &b;
        let mut hdr = [0u8; 4];
        cur.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(cur.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(cur.get_u32_le(), 77);
        assert_eq!(cur.get_f32_le(), 2.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
