//! Offline stand-in for the `criterion` crate.
//!
//! A small but *measuring* bench harness: it warms up, sizes iteration
//! counts to the configured measurement time, runs the configured number
//! of samples, and prints mean / min / max ns-per-iteration for each
//! benchmark. No statistics beyond that — no outlier analysis, no HTML
//! reports, no baselines. See `vendor/README.md` for why external
//! dependencies are vendored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this shim: every batch
/// is one routine call, which matches `LargeInput` semantics and is
/// correct — if slightly slower to run — for the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; one call per batch).
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{function_id}/{parameter}`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall time budgeted for measurement per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall time budgeted for warm-up per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.run_one(&name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        b.report(name);
    }
}

/// A named collection of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&name, f);
        self
    }

    /// Ends the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let t0 = Instant::now();
            black_box(routine());
            t0.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed()
        });
    }

    /// Shared engine: `timed_call` performs one iteration and returns the
    /// on-clock duration of that iteration.
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_call: F) {
        // Warm-up, and a per-iteration cost estimate from its tail.
        let warm_start = Instant::now();
        let mut est = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            est += timed_call();
            warm_iters += 1;
        }
        let per_iter = est / warm_iters.max(1) as u32;

        // Size samples so the whole measurement fits the time budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples_ns.clear();
        self.iters = iters_per_sample;
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                total += timed_call();
            }
            self.samples_ns
                .push(total.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} no samples collected");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.samples_ns.len(),
            self.iters,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a bench group function, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main()` running the given groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 128],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}
