//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository resolves crates offline, so
//! external dependencies are vendored as minimal shims inside the
//! workspace (see `crates/vendor/README.md`). This one maps the
//! `parking_lot` API surface the repo uses onto `std::sync` primitives:
//!
//! * [`Mutex`] / [`MutexGuard`] — non-poisoning `lock()` that returns the
//!   guard directly (a poisoned std mutex is unwrapped; the data inside is
//!   still structurally valid and the owning engines treat a panicked
//!   thread as fatal anyway).
//! * [`Condvar`] with `notify_all` and a `wait_for` that takes the guard
//!   by `&mut`, exactly like parking_lot's.
//! * [`RwLock`] with `read()` / `write()` returning guards directly.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Blocks until notified, re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => {
                timed_out = res.timed_out();
                g
            }
            Err(e) => {
                let (g, res) = e.into_inner();
                timed_out = res.timed_out();
                g
            }
        });
        WaitTimeoutResult(timed_out)
    }

    /// Runs `f` with ownership of the inner std guard, writing the returned
    /// guard back in place. `f` must not panic between taking and returning
    /// the guard; both std wait paths below satisfy that (poison errors are
    /// unwrapped, not propagated).
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
    ) {
        // SAFETY: `guard.0` is a valid initialized guard. We move it out,
        // pass it through `f` (which always returns a guard for the same
        // mutex and never unwinds), and write the result back before anyone
        // can observe the hole.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = f(inner);
            std::ptr::write(&mut guard.0, inner);
        }
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
