//! Offline stand-in for the `proptest` crate.
//!
//! Supports the property-test surface this repo uses: the [`proptest!`]
//! macro with an optional `#![proptest_config(..)]` header, range and
//! tuple strategies, [`any`], `prop_map`, [`prop_oneof!`],
//! [`collection::vec`], and the `prop_assert*` macros. Unlike upstream
//! proptest there is **no shrinking**: a failing case panics with the
//! generated inputs left to the assertion message. Case seeds are derived
//! deterministically from the test name and case index, so failures
//! reproduce across runs. See `vendor/README.md` for why external
//! dependencies are vendored.

#![warn(missing_docs)]

use std::hash::{DefaultHasher, Hash, Hasher};
use std::ops::Range;

/// Runner configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds a generator for `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        TestRng(h.finish() | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty strategy range");
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes this strategy for use in [`prop_oneof!`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(u64, u32, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed same-valued strategies
/// (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; this shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ( $($strat,)+ );
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let ( $($arg,)+ ) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Pick {
        A(u64),
        B(u64),
    }

    fn pick() -> impl Strategy<Value = Pick> {
        prop_oneof![(0u64..4).prop_map(Pick::A), (10u64..14).prop_map(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vec() compose.
        #[test]
        fn generated_values_in_bounds(
            x in 1u64..50,
            (a, b) in (0usize..5, 0.0f64..1.0),
            v in crate::collection::vec(0u32..9, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 9));
            let _ = flag;
        }

        #[test]
        fn oneof_hits_both_arms(picks in crate::collection::vec(pick(), 64..65)) {
            let a = picks.iter().filter(|p| matches!(p, Pick::A(_))).count();
            prop_assert!(a > 0 && a < 64, "union degenerated: {a}/64 A-arms");
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let mut r1 = crate::TestRng::for_case("t", 3);
        let mut r2 = crate::TestRng::for_case("t", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
