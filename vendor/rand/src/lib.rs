//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment resolves crates offline, so external dependencies
//! are vendored as minimal shims inside the workspace (see
//! `crates/vendor/README.md`). This shim provides the pieces the repo
//! uses — [`Rng::random`], [`Rng::random_range`], [`SeedableRng`] and
//! [`rngs::StdRng`] — backed by the public-domain xoshiro256** generator
//! seeded through SplitMix64. The repo's samplers only rely on
//! distributional quality, never on bit-compatibility with upstream
//! `StdRng`, and xoshiro256** passes BigCrush.

#![warn(missing_docs)]

/// Types that can be produced uniformly by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire's method needs
/// 128-bit widening; a simple rejection loop is plenty here).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(u64, u32, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = <$t as StandardUniform>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f64, f32);

macro_rules! signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

signed_range!(i64: u64, i32: u32, isize: usize);

/// A source of randomness (the subset of rand 0.9's `Rng` this repo uses).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The repo's standard generator: xoshiro256** seeded via SplitMix64.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (which is
    /// ChaCha12); every consumer in this repo only needs a fixed,
    /// high-quality, deterministic stream per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna, public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.random_range(0u64..8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..100_000).map(|_| r.random::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
