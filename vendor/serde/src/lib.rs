//! Offline stand-in for `serde`.
//!
//! The repo derives `Serialize`/`Deserialize` on a few spec structs for
//! forward compatibility but never drives them through a serde
//! serializer (telemetry hand-rolls its JSON; checkpoints use a framed
//! binary format). This shim keeps those derives compiling offline:
//! marker traits plus no-op derive macros of the same names. See
//! `crates/vendor/README.md`.

#![warn(missing_docs)]

/// Marker for types declared serializable. No serializer exists in this
/// offline build, so the trait carries no methods.
pub trait Serialize {}

/// Marker for types declared deserializable (no methods; see
/// [`Serialize`]).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
