//! Offline stand-in for `serde_derive`.
//!
//! The repo only *derives* `Serialize`/`Deserialize` on a handful of spec
//! structs and never serializes them through serde (the telemetry layer
//! hand-rolls its JSON). These derives therefore expand to nothing: the
//! attribute stays valid, no code is generated, and the shim needs no
//! parser. See `crates/vendor/README.md`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
